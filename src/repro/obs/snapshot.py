"""Picklable per-cell telemetry snapshots and the deterministic merge.

A sweep cell executed in a worker process records into a private,
in-memory :class:`~repro.obs.Telemetry` built from a :class:`CaptureSpec`
(the picklable recipe the parent ships with the cell).  When the cell
finishes, :func:`capture_snapshot` freezes everything that telemetry
observed — metric values, journal records, full-precision timeline
samples and profiling totals — into a :class:`TelemetrySnapshot`: a
plain-data record that survives both pickling (worker → parent) and JSON
(the content-addressed telemetry artifact stored next to the
:class:`~repro.exec.cache.RunCache` entry).

The parent folds snapshots into its own telemetry with
:func:`merge_snapshot`, in cell submission order.  The merge is
deterministic by construction:

* **counters** sum;
* **gauges** are last-write-wins in cell order;
* **histograms** merge element-wise (bucket bounds must match);
* **timeline samples** interleave by ``(time_ps, subchannel, tick)``
  within each cell;
* **journal records** append in cell order with the per-worker ``run``
  index remapped to the parent's global run sequence;
* **profiling totals** (phase seconds, throughput intervals) accumulate.

Because every cell's snapshot is itself deterministic (simulated time,
seeded RNG) and the merge order is the fixed submission order, serial,
parallel, cached and resumed sweeps all produce byte-identical merged
metrics and journals.  Wall-clock quantities are kept out of the
deterministic sections entirely (see ``Telemetry.snapshot``).

Snapshots are *replayable*: merging the same snapshot object several
times (memoised cells appear once per occurrence in a sweep) must leave
the snapshot untouched, so the merge copies every record it adapts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.timeline import DEFAULT_SAMPLE_EVERY_REFI, TimelineSample

#: Version stamped into snapshot documents; bump on breaking changes.
#: v2 added the ``spans`` section — v1 sidecars are treated as misses so
#: the cell recomputes and the artifact is rewritten complete.
SNAPSHOT_SCHEMA_VERSION = 2

#: TimelineSample field names, in declaration order (pickle/JSON shape).
_SAMPLE_FIELDS = tuple(f.name for f in dataclasses.fields(TimelineSample))


@dataclass(frozen=True)
class CaptureSpec:
    """Picklable recipe for the worker-side capture telemetry.

    Only the knobs that shape *what gets recorded* travel to the worker;
    output destinations (journal files, metric dumps) stay with the
    parent.  Workers always journal in memory so the snapshot is complete
    regardless of which parent flags requested it — a cached telemetry
    artifact can then serve any later flag combination.
    """

    sample_every_refi: int = DEFAULT_SAMPLE_EVERY_REFI

    @classmethod
    def from_telemetry(cls, telemetry) -> "CaptureSpec":
        """The spec reproducing ``telemetry``'s capture behaviour."""
        return cls(sample_every_refi=telemetry.timeline.sample_every_refi)

    def build(self):
        """A fresh in-memory capture telemetry for one cell.

        Spans are always recorded here (same principle as the always-on
        in-memory journal): the snapshot must be complete so a cached
        sidecar can serve a later spans-enabled sweep even if the sweep
        that wrote it had spans off.
        """
        from repro.obs import Telemetry
        return Telemetry(journal_memory=True,
                         sample_every_refi=self.sample_every_refi,
                         spans=True)


@dataclass
class TelemetrySnapshot:
    """Frozen telemetry of one sweep cell (picklable, JSON-able).

    ``metrics`` maps instrument name to its serialised state
    (``{"kind": "counter"|"gauge", "value": v}`` or
    ``{"kind": "histogram", "bounds": [...], "counts": [...],
    "overflow": n, "count": n, "total": x}``); ``journal`` holds the
    cell's journal records verbatim; ``timeline`` holds full-precision
    ``dataclasses.asdict`` forms of every :class:`TimelineSample`;
    ``phases``/``throughput`` carry the profiling totals; ``spans``
    holds the cell's span subtree in document form (see
    :mod:`repro.obs.spans`).
    """

    metrics: dict = field(default_factory=dict)
    journal: list = field(default_factory=list)
    timeline: list = field(default_factory=list)
    phases: dict = field(default_factory=dict)
    throughput: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    schema: int = SNAPSHOT_SCHEMA_VERSION


def _metric_state(instrument) -> dict:
    if isinstance(instrument, Counter):
        return {"kind": "counter", "value": instrument.value}
    if isinstance(instrument, Gauge):
        return {"kind": "gauge", "value": instrument.value}
    if isinstance(instrument, Histogram):
        return {"kind": "histogram",
                "bounds": list(instrument.bounds),
                "counts": list(instrument.counts),
                "overflow": instrument.overflow,
                "count": instrument.count,
                "total": instrument.total}
    raise TypeError(f"unknown instrument type: {type(instrument).__name__}")


def capture_snapshot(telemetry) -> TelemetrySnapshot:
    """Freeze everything ``telemetry`` recorded into a snapshot."""
    registry: MetricsRegistry = telemetry.registry
    metrics = {name: _metric_state(registry.get(name))
               for name in registry.names()}
    journal = [] if telemetry.journal is None \
        else list(telemetry.journal.records)
    timeline = [dataclasses.asdict(sample)
                for sample in telemetry.timeline.samples]
    throughput_gauge = telemetry.profiler.throughput
    spans = [] if telemetry.spans is None else telemetry.spans.to_docs()
    return TelemetrySnapshot(
        metrics=metrics,
        journal=journal,
        timeline=timeline,
        phases=telemetry.profiler.phases.snapshot(),
        throughput={"events": throughput_gauge.events,
                    "seconds": throughput_gauge.seconds,
                    "intervals": throughput_gauge.intervals},
        spans=spans,
    )


def _merge_metric(registry: MetricsRegistry, name: str,
                  state: dict) -> None:
    kind = state.get("kind")
    if kind == "counter":
        registry.counter(name).inc(state["value"])
    elif kind == "gauge":
        registry.gauge(name).set(state["value"])
    elif kind == "histogram":
        bounds = tuple(state["bounds"])
        histogram = registry.histogram(name, bounds)
        if histogram.bounds != bounds:
            raise ValueError(
                f"histogram {name!r}: snapshot bounds {bounds} are "
                f"incompatible with registered bounds {histogram.bounds}")
        for index, count in enumerate(state["counts"]):
            histogram.counts[index] += count
        histogram.overflow += state["overflow"]
        histogram.count += state["count"]
        histogram.total += state["total"]
    else:
        raise ValueError(f"metric {name!r}: unknown kind {kind!r}")


def merge_snapshot(telemetry, snapshot: TelemetrySnapshot) -> None:
    """Fold one cell's snapshot into the parent ``telemetry``.

    Counts this as one run of the parent (``run`` indices in replayed
    journal records are remapped to the parent's sequence).  The snapshot
    is never mutated, so the same object can be merged repeatedly — a
    memoised cell contributes once per occurrence in the sweep.
    """
    telemetry.run_index += 1
    run = telemetry.run_index
    journal = telemetry.journal
    trace = telemetry.trace
    for original in snapshot.journal:
        record = dict(original)
        if "run" in record:
            record["run"] = run
        if journal is not None:
            journal.append_record(record)
        if trace is not None and record.get("kind") == "mitigation":
            trace.record(record)
    samples = [TimelineSample(**sample) for sample in snapshot.timeline]
    samples.sort(key=lambda s: (s.time_ps, s.subchannel, s.tick))
    telemetry.timeline.samples.extend(samples)
    registry = telemetry.registry
    for name in sorted(snapshot.metrics):
        _merge_metric(registry, name, snapshot.metrics[name])
    telemetry.profiler.phases.absorb(snapshot.phases)
    throughput = snapshot.throughput
    telemetry.profiler.throughput.absorb(
        throughput.get("events", 0), throughput.get("seconds", 0.0),
        throughput.get("intervals", 0))
    if telemetry.spans is not None and snapshot.spans:
        telemetry.spans.graft_docs(snapshot.spans)


def snapshot_to_doc(snapshot: TelemetrySnapshot) -> dict:
    """JSON-serialisable document form of a snapshot."""
    return {
        "schema": snapshot.schema,
        "metrics": snapshot.metrics,
        "journal": snapshot.journal,
        "timeline": snapshot.timeline,
        "phases": snapshot.phases,
        "throughput": snapshot.throughput,
        "spans": snapshot.spans,
    }


def snapshot_from_doc(doc) -> TelemetrySnapshot | None:
    """Rebuild a snapshot from its document form.

    Returns ``None`` on any structural mismatch (wrong schema, missing
    or mistyped sections, malformed timeline rows) so callers can treat
    a damaged telemetry artifact exactly like a cache miss.
    """
    if not isinstance(doc, dict):
        return None
    if doc.get("schema") != SNAPSHOT_SCHEMA_VERSION:
        return None
    metrics = doc.get("metrics")
    journal = doc.get("journal")
    timeline = doc.get("timeline")
    phases = doc.get("phases")
    throughput = doc.get("throughput")
    spans = doc.get("spans")
    if not isinstance(metrics, dict) or not isinstance(journal, list) \
            or not isinstance(timeline, list) \
            or not isinstance(phases, dict) \
            or not isinstance(throughput, dict) \
            or not isinstance(spans, list):
        return None
    if not all(isinstance(record, dict) for record in journal):
        return None
    for sample in timeline:
        if not isinstance(sample, dict) \
                or tuple(sample) != _SAMPLE_FIELDS:
            return None
    if not all(isinstance(span, dict) for span in spans):
        return None
    return TelemetrySnapshot(metrics=metrics, journal=journal,
                             timeline=timeline, phases=phases,
                             throughput=throughput, spans=spans)
