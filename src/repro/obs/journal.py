"""Structured JSON-lines run journal.

One record per line.  Every record carries the schema version (``"v"``)
and a record kind (``"kind"``); the kinds the simulator emits are:

* ``run_start``  — one per :func:`~repro.sim.runner.run_simulation` call
  (workload, policy, seed);
* ``sample``     — one per timeline-sampler tick (per sub-channel
  interval deltas, see :mod:`repro.obs.timeline`);
* ``mitigation`` — one per mitigation command any policy issues
  (command, trigger bank, realised RLP, valid DAR count at issue);
* ``summary``    — one per completed run (the
  :class:`~repro.sim.results.RunResult` headline numbers);
* ``profile``    — wall-clock phase timings when profiling is enabled.

The journal writes either to a file (streamed, one ``json.dumps`` per
record — safe for multi-gigabyte runs) or in memory (``records`` list,
used by tests and the in-process consumers).
"""

from __future__ import annotations

import json
from typing import IO, Iterator

#: Version stamped into every record; bump on breaking schema changes.
SCHEMA_VERSION = 1


class RunJournal:
    """Opt-in JSONL journal, file-backed or in-memory.

    With ``path=None`` the journal accumulates dict records in
    :attr:`records`; with a path it streams JSON lines to the file and
    keeps nothing in memory.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self.records: list[dict] = []
        self.written = 0
        self._handle: IO[str] | None = None
        if path is not None:
            self._handle = open(path, "w", encoding="utf-8")

    def write(self, kind: str, **payload) -> dict:
        """Append one record of ``kind``; returns the record written."""
        record = {"v": SCHEMA_VERSION, "kind": kind}
        record.update(payload)
        return self.append_record(record)

    def append_record(self, record: dict) -> dict:
        """Append one pre-built record verbatim (no re-stamping).

        Used when replaying records captured elsewhere — e.g. merging a
        worker's :class:`~repro.obs.snapshot.TelemetrySnapshot` — where
        the record already carries ``v``/``kind`` and must serialise
        byte-identically to its original emission.
        """
        if self._handle is not None:
            self._handle.write(json.dumps(record, default=_jsonify))
            self._handle.write("\n")
        else:
            self.records.append(record)
        self.written += 1
        return record

    def close(self) -> None:
        """Flush and close the backing file (no-op in memory mode)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def kinds(self) -> dict[str, int]:
        """Record counts by kind (in-memory mode only)."""
        counts: dict[str, int] = {}
        for record in self.records:
            kind = record.get("kind", "?")
            counts[kind] = counts.get(kind, 0) + 1
        return counts


def _jsonify(value):
    """Fallback serialiser: enums render as their value, else str()."""
    value_attr = getattr(value, "value", None)
    if isinstance(value_attr, (str, int, float)):
        return value_attr
    return str(value)


def read_journal(path: str) -> Iterator[dict]:
    """Iterate over the records of a JSONL journal file.

    Unversioned or malformed lines raise ``ValueError`` with the line
    number, so a truncated journal fails loudly rather than silently.
    """
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{number}: not valid JSON: {error}") from error
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError(
                    f"{path}:{number}: journal records need a 'kind'")
            yield record


def load_journal(path: str) -> list[dict]:
    """All records of a JSONL journal file as a list."""
    return list(read_journal(path))


def unsupported_schema(records) -> int | None:
    """Highest record schema version beyond this build, or ``None``.

    Journals written by a newer repro may carry record shapes this
    build cannot interpret; the analyzers (``repro stats`` /
    ``repro trace``) use this to refuse cleanly instead of misreading
    or crashing partway through.
    """
    newest = None
    for record in records:
        version = record.get("v")
        if isinstance(version, int) and version > SCHEMA_VERSION:
            if newest is None or version > newest:
                newest = version
    return newest
