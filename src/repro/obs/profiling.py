"""Wall-clock profiling: phase timers and an events/sec throughput gauge.

All timers use :func:`time.perf_counter` (monotonic, high resolution) —
never ``time.time``, which can jump under NTP adjustments and has coarse
resolution on some platforms.

The profiler answers two questions the simulated-time telemetry cannot:

* *where does wall-clock go?* — :class:`PhaseTimer` accumulates elapsed
  seconds per named phase (``build_traces``, ``simulate``, ...);
* *how fast is the engine?* — :class:`ThroughputGauge` folds completed
  event counts over their elapsed time into an events/sec figure, the
  baseline number future performance PRs regress against.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


class Stopwatch:
    """A running :func:`time.perf_counter` stopwatch."""

    __slots__ = ("started",)

    def __init__(self) -> None:
        self.started = time.perf_counter()

    @property
    def elapsed_s(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return time.perf_counter() - self.started

    def restart(self) -> float:
        """Reset the origin; returns the elapsed seconds before reset."""
        now = time.perf_counter()
        elapsed = now - self.started
        self.started = now
        return elapsed


@dataclass
class PhaseTimer:
    """Accumulated wall-clock per named phase."""

    seconds: dict = field(default_factory=dict)
    calls: dict = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str):
        """Context manager timing one execution of ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.add(name, elapsed)

    def add(self, name: str, elapsed_s: float) -> None:
        """Credit ``elapsed_s`` seconds to ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed_s
        self.calls[name] = self.calls.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Accumulated seconds of one phase (0.0 if never entered)."""
        return self.seconds.get(name, 0.0)

    def absorb(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot`-shaped dict into this timer."""
        for name, entry in snapshot.items():
            self.seconds[name] = self.seconds.get(name, 0.0) \
                + entry["seconds"]
            self.calls[name] = self.calls.get(name, 0) + entry["calls"]

    def reset(self) -> None:
        self.seconds.clear()
        self.calls.clear()

    def snapshot(self) -> dict:
        """Per-phase ``{seconds, calls}`` (JSON-serialisable)."""
        return {name: {"seconds": self.seconds[name],
                       "calls": self.calls[name]}
                for name in sorted(self.seconds)}

    def render(self) -> str:
        """Human-readable phase table, slowest first."""
        if not self.seconds:
            return "(no phases recorded)"
        width = max(len(name) for name in self.seconds)
        lines = []
        for name in sorted(self.seconds, key=self.seconds.get,
                           reverse=True):
            lines.append(f"{name.ljust(width)}  {self.seconds[name]:9.3f}s"
                         f"  x{self.calls[name]}")
        return "\n".join(lines)


@dataclass
class ThroughputGauge:
    """Events/sec across one or more measured intervals."""

    events: int = 0
    seconds: float = 0.0
    intervals: int = 0

    def record(self, events: int, seconds: float) -> None:
        """Fold one measured interval into the gauge."""
        self.events += events
        self.seconds += seconds
        self.intervals += 1

    def absorb(self, events: int, seconds: float,
               intervals: int) -> None:
        """Fold another gauge's accumulated totals into this one."""
        self.events += events
        self.seconds += seconds
        self.intervals += intervals

    @property
    def events_per_sec(self) -> float:
        """Aggregate throughput (0.0 before any interval)."""
        return self.events / self.seconds if self.seconds > 0 else 0.0

    def reset(self) -> None:
        self.events = 0
        self.seconds = 0.0
        self.intervals = 0

    def snapshot(self) -> dict:
        return {"events": self.events, "seconds": self.seconds,
                "events_per_sec": self.events_per_sec}


@dataclass
class Profiler:
    """Phase timers plus the engine-loop throughput gauge."""

    phases: PhaseTimer = field(default_factory=PhaseTimer)
    throughput: ThroughputGauge = field(default_factory=ThroughputGauge)

    def phase(self, name: str):
        """Context manager timing one execution of ``name``."""
        return self.phases.phase(name)

    def reset(self) -> None:
        self.phases.reset()
        self.throughput.reset()

    def snapshot(self) -> dict:
        return {"phases": self.phases.snapshot(),
                "throughput": self.throughput.snapshot()}

    def render(self) -> str:
        """Phase table plus the throughput line."""
        lines = [self.phases.render()]
        if self.throughput.intervals:
            lines.append(f"engine throughput: "
                         f"{self.throughput.events_per_sec:,.0f} events/s "
                         f"({self.throughput.events:,} events / "
                         f"{self.throughput.seconds:.3f}s)")
        return "\n".join(lines)
