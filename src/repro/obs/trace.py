"""Bounded structured trace of mitigation events.

DREAM's headline quantities are *per-event*: the RLP of each DRFM, the
DAR occupancy at issue time, which banks a command blocked.  End-of-run
aggregates (counters, histograms) cannot answer "what did the policy do
around t=X" — the trace can, because it keeps the individual
``mitigation`` journal records (see :mod:`repro.obs.journal` for the
field list, including ``dars`` — valid DAR count at issue).

The trace is **bounded**: once ``limit`` events are held, further events
increment :attr:`dropped` instead of growing memory without bound — a
full-length sweep can issue millions of mitigations.  Dropping from the
tail keeps the earliest events, which is what post-mortem debugging of a
mis-configured tracker usually needs.

Analysis lives in :mod:`repro.analysis.trace` (the ``repro trace`` CLI
subcommand); this module is only the collection surface.
"""

from __future__ import annotations

import json
import os
import tempfile

#: Default event capacity (~a few hundred MB of records at worst).
DEFAULT_TRACE_LIMIT = 200_000


class EventTrace:
    """A bounded, append-only list of mitigation event records."""

    __slots__ = ("limit", "events", "dropped")

    def __init__(self, limit: int = DEFAULT_TRACE_LIMIT) -> None:
        if limit < 1:
            raise ValueError("trace limit must be positive")
        self.limit = limit
        self.events: list[dict] = []
        self.dropped = 0

    def record(self, record: dict) -> None:
        """Keep one event record (or count it as dropped past capacity)."""
        if len(self.events) >= self.limit:
            self.dropped += 1
        else:
            self.events.append(record)

    def extend(self, records) -> None:
        for record in records:
            self.record(record)

    def __len__(self) -> int:
        return len(self.events)

    def write_jsonl(self, path: str) -> None:
        """Write the trace as JSONL, atomically (temp file + rename)."""
        directory = os.path.dirname(os.path.abspath(path))
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=directory,
            prefix=".trace.", suffix=".tmp", delete=False)
        try:
            with handle:
                for record in self.events:
                    handle.write(json.dumps(record))
                    handle.write("\n")
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
