"""Figure 9: DREAM-R versus NRR and DRFMsb at T_RH = 2000.

The headline DREAM-R result: delayed DRFM brings PARA from 12.7%
(DRFMsb) to 4.24% — close to NRR's 3.92% — and brings MINT from 15.9%
to 2.1%, *below* NRR's 3.84% (concurrent blocking beats staggered
blocking once RLP is high).
"""

from __future__ import annotations

from repro.core.dream_r import dream_r_mint_factory, dream_r_para_factory
from repro.dram.commands import Command
from repro.experiments.common import (default_system,
                                      DEFAULT_SEED, DesignSpec,
                                      ExperimentResult, default_sim_config,
                                      series_rows, sweep_designs)
from repro.mc.mitigation import coupled_mint_factory, coupled_para_factory
from repro.sim.config import SystemConfig

#: Rowhammer threshold of the experiment.
T_RH = 2000

PAPER_AVERAGES = {
    "para-nrr": 3.92, "para-drfmsb": 12.7, "para-dream-r": 4.24,
    "mint-nrr": 3.84, "mint-drfmsb": 15.9, "mint-dream-r": 2.1,
}


def designs(t_rh: int = T_RH) -> list[DesignSpec]:
    """The six Figure 9 configurations."""
    return [
        DesignSpec("para-nrr", coupled_para_factory(t_rh, Command.NRR)),
        DesignSpec("para-drfmsb",
                   coupled_para_factory(t_rh, Command.DRFM_SB)),
        DesignSpec("para-dream-r", dream_r_para_factory(t_rh)),
        DesignSpec("mint-nrr", coupled_mint_factory(t_rh, Command.NRR)),
        DesignSpec("mint-drfmsb",
                   coupled_mint_factory(t_rh, Command.DRFM_SB)),
        DesignSpec("mint-dream-r", dream_r_mint_factory(t_rh)),
    ]


def run(quick: bool = True, requests_per_core: int | None = None,
        seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate Figure 9."""
    system = default_system()
    sim = default_sim_config(quick, requests_per_core, seed)
    series = sweep_designs(designs(), system, sim, quick=quick)
    return ExperimentResult(
        experiment="fig9",
        title=f"DREAM-R vs NRR vs DRFMsb at T_RH={T_RH} (slowdown %)",
        rows=series_rows(series),
        paper_reference={f"avg {k}": f"{v}%"
                         for k, v in PAPER_AVERAGES.items()},
        notes="expect dream-r ~ nrr << drfmsb for PARA; "
              "dream-r < nrr for MINT",
    )
