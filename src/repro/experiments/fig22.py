"""Figure 22 (Appendix C): DREAM-C under higher memory intensity.

Doubling the cores from 8 to 16 (same memory channel) raises bandwidth
utilisation and thus per-gang activation rates, so DCT counters trip more
often and DREAM-C slows down more.  Doubling the DCT entries with the
core count (DREAM-C 2x — constant entries per core, like per-core LLC
slices) restores the slowdown: paper 5.5% -> 0.2% at T_RH = 500.
"""

from __future__ import annotations

from repro.core.dream_c import dream_c_factory
from repro.experiments.common import (default_system,
                                      DEFAULT_SEED, DesignSpec,
                                      ExperimentResult, default_sim_config,
                                      series_rows, sweep_designs)
from repro.sim.config import SystemConfig

#: Swept thresholds.
THRESHOLDS = (250, 500, 1000)

#: Core count of the high-intensity configuration.
CORES = 16

PAPER = {
    "dream-c@500 (16 cores)": "5.5%",
    "dream-c-2x@500 (16 cores)": "0.2%",
    "dream-c@500 (8 cores)": "2.6%",
}


def designs(thresholds: tuple[int, ...] = THRESHOLDS) -> list[DesignSpec]:
    """DREAM-C and DREAM-C (2x) at every threshold."""
    specs = []
    for t_rh in thresholds:
        specs.append(DesignSpec(f"dream-c-{t_rh}",
                                dream_c_factory(t_rh, randomized=True)))
        specs.append(DesignSpec(
            f"dream-c-2x-{t_rh}",
            dream_c_factory(t_rh, randomized=True, storage_multiplier=2)))
    return specs


def run(quick: bool = True, requests_per_core: int | None = None,
        seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate Figure 22 (16-core configuration)."""
    system = default_system(num_cores=CORES)
    sim = default_sim_config(quick, requests_per_core, seed)
    series = sweep_designs(designs(), system, sim, quick=quick)
    return ExperimentResult(
        experiment="fig22",
        title=f"DREAM-C with {CORES} cores: 1x vs 2x DCT (slowdown %)",
        rows=series_rows(series),
        paper_reference=PAPER,
        notes="2x DCT entries should cut the 16-core slowdown sharply",
    )
