"""Table 7: tolerated T_RH of DREAM-R (MINT) with and without RMAQ.

The DRFM rate limit (one mitigation per row per 2*tREFI) is enforced with
the RMAQ filter; an attacker exploiting the filter gains extra
activations only for small MINT windows.  The analytic penalty
``max(0, 75 - W ln(W) / 2)`` matches the paper's numbers within rounding;
this experiment tabulates both, plus a Monte-Carlo check of the attack
pattern from Section 6.2 driven against the real policy.
"""

from __future__ import annotations

from repro.analysis.harness import AttackHarness
from repro.core.dream_r import dream_r_mint_factory
from repro.core.rmaq import capacity_for_window
from repro.core.security import (PAPER_TABLE7_PENALTY,
                                 dream_r_mint_threshold,
                                 rmaq_threshold_penalty)
from repro.experiments.common import DEFAULT_SEED, ExperimentResult
from repro.workloads.attacks import rmaq_abuse

#: MINT windows of the paper's table.
WINDOWS = (25, 30, 35, 40, 45, 50, 100)


def measured_abuse_gain(window: int, seed: int,
                        rounds: int = 6) -> int:
    """Monte-Carlo: peak unmitigated streak under the RMAQ-abuse attack.

    Runs the Section 6.2 pattern against rate-limited DREAM-R (MINT) and
    reports the single-sided peak streak on the target row; the analytic
    model says this exceeds the no-rate-limit guarantee only for small
    windows.
    """
    t_rh = dream_r_mint_threshold(window)
    harness = AttackHarness(
        dream_r_mint_factory(t_rh, rate_limited=True), seed=seed)
    rows = list(range(window))
    pattern = rmaq_abuse(rows, extra_on_target=150, rounds=rounds)
    result = harness.run(pattern, bank=0)
    return result.peak_for(0, rows[0])


def run(quick: bool = True, requests_per_core: int | None = None,
        seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate Table 7."""
    rows = []
    for window in WINDOWS:
        penalty = rmaq_threshold_penalty(window)
        rows.append({
            "mint_w": window,
            "t_rh_dream_r": dream_r_mint_threshold(window),
            "rmaq_entries": capacity_for_window(window),
            "penalty_with_rmaq": penalty,
            "paper_penalty": PAPER_TABLE7_PENALTY[window],
            "abuse_peak_streak": measured_abuse_gain(window, seed)
            if not quick or window in (25, 50) else "-",
        })
    return ExperimentResult(
        experiment="table7",
        title="T_RH of DREAM-R (MINT) with/without DRFM rate limits",
        rows=rows,
        paper_reference={f"W={w}": f"+{p}"
                         for w, p in PAPER_TABLE7_PENALTY.items()},
        notes="analytic penalty max(0, 75 - W ln W / 2) matches the paper "
              "within rounding; penalties vanish for W >= ~45",
    )
