"""Per-table / per-figure experiment modules (see DESIGN.md index)."""

from repro.experiments.common import (DesignSpec, ExperimentResult,
                                      default_sim_config, full_mode_enabled,
                                      series_rows, sweep_designs)

__all__ = [
    "DesignSpec",
    "ExperimentResult",
    "default_sim_config",
    "full_mode_enabled",
    "series_rows",
    "sweep_designs",
]
