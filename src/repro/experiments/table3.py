"""Table 3: workload characterisation of the synthetic traces.

Runs every workload unprotected with an *activation census* policy that
counts ACTs per (bank, row) per refresh window, then reports the same
columns as the paper's Table 3 — average ACTs per row per window, the
percentage of rows with 0 / 1-4 / >= 5 activations, and bandwidth
utilisation — side by side with the paper's measured values, validating
the workload substitution of DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (default_system,
                                      DEFAULT_SEED, ExperimentResult,
                                      default_sim_config)
from repro.mc.policy import MitigationPolicy, PolicyContext
from repro.sim.config import SystemConfig
from repro.sim.runner import run_simulation
from repro.workloads.builder import build_traces
from repro.workloads.profiles import WorkloadProfile, profiles_for


@dataclass
class WindowHistogram:
    """Accumulated per-window row-activation histogram."""

    windows: int = 0
    rows_act0: float = 0.0
    rows_act1_4: float = 0.0
    rows_act5: float = 0.0
    acts: int = 0

    def add_window(self, counts: dict[tuple[int, int], int],
                   total_rows: int) -> None:
        touched = len(counts)
        low = sum(1 for value in counts.values() if value <= 4)
        high = touched - low
        self.windows += 1
        self.rows_act0 += total_rows - touched
        self.rows_act1_4 += low
        self.rows_act5 += high
        self.acts += sum(counts.values())

    def percentages(self, total_rows: int) -> tuple[float, float, float]:
        if not self.windows:
            return 100.0, 0.0, 0.0
        scale = 100.0 / (total_rows * self.windows)
        return (self.rows_act0 * scale, self.rows_act1_4 * scale,
                self.rows_act5 * scale)

    def avg_acts_per_row(self, total_rows: int) -> float:
        if not self.windows:
            return 0.0
        return self.acts / (total_rows * self.windows)


class ActivationCensusPolicy(MitigationPolicy):
    """Counts ACTs per (bank, row) per refresh window; never mitigates."""

    name = "census"

    def __init__(self, context: PolicyContext) -> None:
        super().__init__()
        self._window_ps = context.timing.t_refw
        self._next_window_ps = self._window_ps
        self._total_rows = context.num_banks * context.rows_per_bank
        self._counts: dict[tuple[int, int], int] = {}
        self.histogram = WindowHistogram()

    def before_activate(self, bank: int, row: int, now_ps: int) -> bool:
        self.stats.activations_observed += 1
        if now_ps >= self._next_window_ps:
            self.histogram.add_window(self._counts, self._total_rows)
            self._counts = {}
            self._next_window_ps += self._window_ps
        key = (bank, row)
        self._counts[key] = self._counts.get(key, 0) + 1
        return False

    def close_partial_window(self) -> None:
        """Fold the trailing partial window in when no full one exists."""
        if self.histogram.windows == 0 and self._counts:
            self.histogram.add_window(self._counts, self._total_rows)
            self._counts = {}

    @property
    def total_rows(self) -> int:
        return self._total_rows


def characterize(workload: WorkloadProfile, system: SystemConfig,
                 sim) -> dict:
    """Run one workload and measure its Table 3 row."""
    policies: list[ActivationCensusPolicy] = []

    def factory(context: PolicyContext) -> ActivationCensusPolicy:
        policy = ActivationCensusPolicy(context)
        policies.append(policy)
        return policy

    traces = build_traces(workload, system, sim)
    result = run_simulation(system, traces, sim, factory, "census")
    merged = WindowHistogram()
    total_rows = 0
    for policy in policies:
        policy.close_partial_window()
        merged.windows += policy.histogram.windows
        merged.rows_act0 += policy.histogram.rows_act0
        merged.rows_act1_4 += policy.histogram.rows_act1_4
        merged.rows_act5 += policy.histogram.rows_act5
        merged.acts += policy.histogram.acts
        total_rows = policy.total_rows
    act0, act14, act5 = merged.percentages(total_rows)
    return {
        "workload": workload.name,
        "avg_acts_per_row": merged.avg_acts_per_row(total_rows),
        "paper_avg_acts": workload.avg_acts_per_row,
        "rows_act0_pct": act0,
        "paper_act0": workload.pct_rows_act0,
        "rows_act1_4_pct": act14,
        "paper_act1_4": workload.pct_rows_act1_4,
        "rows_act5_pct": act5,
        "paper_act5": workload.pct_rows_act5,
        "bw_util_pct": result.bus_utilization * 100.0,
        "paper_bw": workload.bw_util_pct,
    }


def run(quick: bool = True, requests_per_core: int | None = None,
        seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate Table 3 from the synthetic traces."""
    system = default_system()
    sim = default_sim_config(quick, requests_per_core, seed)
    rows = [characterize(workload, system, sim)
            for workload in profiles_for(quick=quick)]
    return ExperimentResult(
        experiment="table3",
        title="Workload characteristics: generated vs paper",
        rows=rows,
        paper_reference={"average avg_acts_per_row": 0.73,
                         "average rows_act0": "80.2%",
                         "average bw_util": "66%"},
        notes="synthetic traces are calibrated to the paper's Table 3; "
              "columns prefixed 'paper_' show the reference values",
    )
