"""Table 5: realised RLP of PARA and MINT with DRFMsb vs DREAM-R.

The key-insight measurement: coupled designs achieve RLP ~ 1 (the DRFM
stalls 8 banks but mitigates ~1 row); DREAM-R's delay raises the realised
RLP to 3.23 (PARA) and 7.55 (MINT, near the maximum 8).
"""

from __future__ import annotations

from repro.core.dream_r import dream_r_mint_factory, dream_r_para_factory
from repro.dram.commands import Command
from repro.experiments.common import (default_system,
                                      DEFAULT_SEED, DesignSpec,
                                      ExperimentResult, default_sim_config,
                                      sweep_designs)
from repro.mc.mitigation import coupled_mint_factory, coupled_para_factory
from repro.sim.config import SystemConfig

#: Rowhammer threshold of the experiment.
T_RH = 2000

PAPER_RLP = {
    "para-drfmsb": 1.07,
    "mint-drfmsb": 1.0,
    "para-dream-r": 3.23,
    "mint-dream-r": 7.55,
}


def designs(t_rh: int = T_RH) -> list[DesignSpec]:
    """The four Table 5 configurations."""
    return [
        DesignSpec("para-drfmsb",
                   coupled_para_factory(t_rh, Command.DRFM_SB)),
        DesignSpec("mint-drfmsb",
                   coupled_mint_factory(t_rh, Command.DRFM_SB)),
        DesignSpec("para-dream-r", dream_r_para_factory(t_rh)),
        DesignSpec("mint-dream-r", dream_r_mint_factory(t_rh)),
    ]


def run(quick: bool = True, requests_per_core: int | None = None,
        seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate Table 5."""
    system = default_system()
    sim = default_sim_config(quick, requests_per_core, seed)
    series = sweep_designs(designs(), system, sim, quick=quick)
    rows = [
        {
            "design": name,
            "average_rlp": data.average_rlp,
            "paper_rlp": PAPER_RLP[name],
        }
        for name, data in series.items()
    ]
    return ExperimentResult(
        experiment="table5",
        title="Average RLP for PARA and MINT with DRFMsb and DREAM-R",
        rows=rows,
        paper_reference={k: v for k, v in PAPER_RLP.items()},
        notes="available RLP with DRFMsb is 8; DREAM-R should approach it "
              "for MINT",
    )
