"""Figure 5: PARA and MINT slowdown with NRR vs DRFMsb vs DRFMab.

The motivation experiment (Sections 2.7): coupled PARA/MINT at
T_RH = 2000 implemented with the hypothetical NRR command and with the
real DRFMsb / DRFMab commands.  Paper averages: 3.9% (NRR, both
trackers), 12.7% / 15.9% (DRFMsb, PARA / MINT), 49% / 82% (DRFMab).
The reproduction should show the same strict ordering
NRR << DRFMsb << DRFMab with multi-x gaps.
"""

from __future__ import annotations

from repro.dram.commands import Command
from repro.experiments.common import (default_system,
                                      DEFAULT_SEED, DesignSpec,
                                      ExperimentResult, default_sim_config,
                                      series_rows, sweep_designs)
from repro.mc.mitigation import coupled_mint_factory, coupled_para_factory
from repro.sim.config import SystemConfig

#: Rowhammer threshold of the motivation experiment.
T_RH = 2000

PAPER_AVERAGES = {
    "para-nrr": 3.9, "para-drfmsb": 12.7, "para-drfmab": 49.0,
    "mint-nrr": 3.9, "mint-drfmsb": 15.9, "mint-drfmab": 82.0,
}


def designs(t_rh: int = T_RH) -> list[DesignSpec]:
    """The six Figure 5 configurations."""
    return [
        DesignSpec("para-nrr", coupled_para_factory(t_rh, Command.NRR)),
        DesignSpec("para-drfmsb",
                   coupled_para_factory(t_rh, Command.DRFM_SB)),
        DesignSpec("para-drfmab",
                   coupled_para_factory(t_rh, Command.DRFM_AB)),
        DesignSpec("mint-nrr", coupled_mint_factory(t_rh, Command.NRR)),
        DesignSpec("mint-drfmsb",
                   coupled_mint_factory(t_rh, Command.DRFM_SB)),
        DesignSpec("mint-drfmab",
                   coupled_mint_factory(t_rh, Command.DRFM_AB)),
    ]


def run(quick: bool = True, requests_per_core: int | None = None,
        seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate Figure 5."""
    system = default_system()
    sim = default_sim_config(quick, requests_per_core, seed)
    series = sweep_designs(designs(), system, sim, quick=quick)
    return ExperimentResult(
        experiment="fig5",
        title=f"PARA/MINT with NRR, DRFMsb, DRFMab at T_RH={T_RH} "
              "(slowdown %)",
        rows=series_rows(series),
        paper_reference={f"avg {k}": f"{v}%"
                         for k, v in PAPER_AVERAGES.items()},
        notes="expect NRR << DRFMsb << DRFMab for both trackers",
    )
