"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's figures to probe the knobs behind them:

* **ATM threshold** (Section 4.4) — the trade between mitigation
  frequency (smaller ATM-TH forces more DRFMs) and delay exposure.
* **Vertical sharing** (Section 5.5) — gang size vs storage vs slowdown
  at a fixed threshold, the design space around Table 6's chosen points.
* **Window scaling** (DESIGN.md methodology) — the same experiment at two
  refresh-window scales must agree, validating the scaled-simulation
  substitution.
* **Rate-limit / transitive attacks** (Sections 6 and 6.4) — bounded
  refresh vs the DRFM rate limit vs Fractal Mitigation against a
  Half-Double-style transitive attack, on the disturbance model.
* **MLP sensitivity** — the paper's orderings must be robust to the
  closed-loop core model's outstanding-miss parameter.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.dream_c import dream_c_factory
from repro.core.dream_r import dream_r_mint_factory, dream_r_para_factory
from repro.core.security import para_probability_dream_r
from repro.core.storage import dream_c_config
from repro.dram.commands import Command
from repro.dram.disturbance import (DisturbanceConfig, DisturbanceModel,
                                    RefreshMode)
from repro.exec.spec import spec_factory
from repro.experiments.common import (DEFAULT_SEED, DesignSpec,
                                      ExperimentResult, default_sim_config,
                                      default_system, sweep_designs)
from repro.mc.mitigation import coupled_para_factory
from repro.sim.config import SystemConfig
from repro.workloads.profiles import profiles_for

#: Workloads used by the focused ablations (memory-intensive pair).
ABLATION_WORKLOADS = ("mcf", "bwaves")


def _ablation_profiles():
    return profiles_for(names=list(ABLATION_WORKLOADS))


# ----------------------------------------------------------------------
# ATM threshold (Section 4.4)
# ----------------------------------------------------------------------
def run_atm(quick: bool = True, requests_per_core: int | None = None,
            seed: int = DEFAULT_SEED, t_rh: int = 2000) -> ExperimentResult:
    """Sweep ATM-TH for DREAM-R (PARA) at a fixed threshold."""
    system = default_system()
    sim = default_sim_config(quick, requests_per_core, seed)
    specs = [
        DesignSpec(f"atm-{th}", dream_r_para_factory(t_rh,
                                                     atm_threshold=th))
        for th in (5, 20, 80)
    ]
    # No ATM: absorb the delay by revising p instead (Appendix A).
    revised = para_probability_dream_r(t_rh)
    specs.append(DesignSpec(
        "no-atm-revised-p", revised_para_factory(t_rh, revised)))
    series = sweep_designs(specs, system, sim,
                           workloads=_ablation_profiles(), quick=quick)
    rows = [{"design": name,
             "avg_slowdown": data.average_slowdown,
             "avg_rlp": data.average_rlp}
            for name, data in series.items()]
    return ExperimentResult(
        experiment="ablation-atm",
        title=f"DREAM-R (PARA) ATM-threshold sweep at T_RH={t_rh}",
        rows=rows,
        paper_reference={"paper's choice": "ATM-TH = 20 (3 bytes/bank)"},
        notes="small ATM-TH forces early DRFMs (less RLP); no-ATM needs "
              "~17% more mitigations via the revised probability",
    )


def _revised_para(context, t_rh, probability):
    from repro.core.dream_r import DreamRParaPolicy
    policy = DreamRParaPolicy(context, t_rh, atm_threshold=10 ** 9,
                              probability=probability)
    policy.name = "no-atm-revised-p"
    return policy


@spec_factory
def revised_para_factory(t_rh: int, probability: float):
    """Factory for the no-ATM, revised-probability DREAM-R variant."""
    return lambda context: _revised_para(context, t_rh, probability)


# ----------------------------------------------------------------------
# Vertical sharing (Section 5.5)
# ----------------------------------------------------------------------
def run_vertical(quick: bool = True,
                 requests_per_core: int | None = None,
                 seed: int = DEFAULT_SEED,
                 t_rh: int = 500) -> ExperimentResult:
    """Sweep DREAM-C's gang size (32V) at a fixed threshold."""
    system = default_system()
    sim = default_sim_config(quick, requests_per_core, seed)
    verticals = (1, 2, 4, 8)
    specs = [
        DesignSpec(f"gang-{32 * v}",
                   dream_c_factory(t_rh, randomized=True, vertical=v))
        for v in verticals
    ]
    series = sweep_designs(specs, system, sim,
                           workloads=_ablation_profiles(), quick=quick)
    rows = []
    for v in verticals:
        name = f"gang-{32 * v}"
        config = dream_c_config(t_rh, vertical=v)
        rows.append({
            "gang_size": 32 * v,
            "num_drfmab": v,
            "kb_per_bank_full_size": config.sram_kb_per_bank(),
            "avg_slowdown": series[name].average_slowdown,
        })
    return ExperimentResult(
        experiment="ablation-vertical",
        title=f"DREAM-C vertical-sharing design space at T_RH={t_rh}",
        rows=rows,
        paper_reference={"paper's choice": "gang 128 (V=4) at T_RH=500"},
        notes="storage falls with V while mitigation cost (V DRFMabs) "
              "rises — Table 6 picks the knee",
    )


# ----------------------------------------------------------------------
# Window-scaling validation (DESIGN.md methodology)
# ----------------------------------------------------------------------
def run_window_scaling(quick: bool = True,
                       requests_per_core: int | None = None,
                       seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Run the same DREAM-R experiment at two window scales.

    The scaled-window methodology claims results are invariant to the
    refresh-window divisor (rows and window shrink together); this
    ablation measures the same configurations at 32- and 64-REF windows.
    """
    sim = default_sim_config(quick, requests_per_core, seed)
    rows = []
    for refs in (32, 64):
        system = SystemConfig.baseline(refs_per_window=refs)
        specs = [
            DesignSpec("para-dream-r", dream_r_para_factory(2000)),
            DesignSpec("mint-dream-r", dream_r_mint_factory(2000)),
        ]
        series = sweep_designs(specs, system, sim,
                               workloads=_ablation_profiles(),
                               quick=quick)
        for name, data in series.items():
            rows.append({
                "refs_per_window": refs,
                "design": name,
                "avg_slowdown": data.average_slowdown,
                "avg_rlp": data.average_rlp,
            })
    return ExperimentResult(
        experiment="ablation-window-scaling",
        title="Scaled-window invariance check (32 vs 64 REFs/window)",
        rows=rows,
        paper_reference={"claim": "DESIGN.md scaling preserves results"},
        notes="slowdown and RLP should agree across scales within noise",
    )


# ----------------------------------------------------------------------
# Rate limits and Fractal Mitigation (Sections 6, 6.4)
# ----------------------------------------------------------------------
def run_rate_limit(quick: bool = True,
                   requests_per_core: int | None = None,
                   seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Transitive (Half-Double-style) attack vs victim-refresh flavours.

    Drives ``mitigations`` victim refreshes of one aggressor within a
    refresh window on the disturbance model and reports whether the
    distance-2 neighbour flips, for: bounded refresh without coverage,
    the JEDEC rate limit (one mitigation per 2*tREFI), bounded refresh
    with probabilistic distance-2 coverage, and Fractal Mitigation.
    """
    device_threshold = 64  # disturbance units the distance-2 cell absorbs
    unlimited = 1_000      # attacker-forced mitigations per window
    rate_limited = 16      # one per 2*tREFI in a 32-REF window
    scenarios = [
        ("bounded p2=0, no limit", RefreshMode.BOUNDED, 0.0, unlimited),
        ("bounded p2=0, rate-limited", RefreshMode.BOUNDED, 0.0,
         rate_limited),
        ("bounded p2=0.5, no limit", RefreshMode.BOUNDED, 0.5, unlimited),
        ("fractal p=0.5, no limit", RefreshMode.FRACTAL, 0.5, unlimited),
    ]
    rows = []
    for name, mode, p2, mitigations in scenarios:
        config = DisturbanceConfig(t_rh=device_threshold, mode=mode,
                                   p2=p2, fractal_p=p2 or 0.5)
        model = DisturbanceModel(config, rows_per_bank=256, seed=seed)
        for i in range(mitigations):
            model.on_mitigation(0, 10, i)
        d2_flips = sum(1 for flip in model.flips if flip.row in (8, 12))
        rows.append({
            "scenario": name,
            "mitigations_per_window": mitigations,
            "distance2_flips": d2_flips,
            "max_residual_charge": model.max_charge(),
        })
    return ExperimentResult(
        experiment="ablation-rate-limit",
        title="Transitive attack vs victim-refresh flavours "
              f"(device flips at {device_threshold})",
        rows=rows,
        paper_reference={
            "section 6": "rate limit bounds transitive exposure",
            "section 6.4": "Fractal Mitigation obviates the rate limit",
        },
        notes="only the uncovered, unlimited scenario should flip",
    )


# ----------------------------------------------------------------------
# Page policy (open vs closed row buffers)
# ----------------------------------------------------------------------
def run_page_policy(quick: bool = True,
                    requests_per_core: int | None = None,
                    seed: int = DEFAULT_SEED,
                    t_rh: int = 2000) -> ExperimentResult:
    """Open- vs closed-page interaction with Rowhammer mitigation.

    Closed-page controllers activate on *every* access, multiplying the
    tracker-visible ACT rate — and therefore the mitigation rate of any
    rate-proportional tracker like PARA.  The ablation runs the
    unprotected and PARA-DREAM-R systems under both policies; each
    protected run is compared against the *same-policy* unprotected
    baseline so the numbers isolate the mitigation overhead.
    """
    from repro.mc.page_policy import PagePolicy
    from repro.sim.results import ComparisonResult
    from repro.sim.runner import run_simulation
    from repro.workloads.builder import build_traces

    sim = default_sim_config(quick, requests_per_core, seed)
    rows = []
    for policy in (PagePolicy.OPEN, PagePolicy.CLOSED):
        system = replace(default_system(), page_policy=policy)
        act_rates = []
        slowdowns = []
        mitigations = []
        for workload in _ablation_profiles():
            traces = build_traces(workload, system, sim)
            baseline = run_simulation(system, traces, sim)
            protected = run_simulation(system, traces, sim,
                                       dream_r_para_factory(t_rh),
                                       "para-dream-r")
            act_rates.append(baseline.activations
                             / baseline.requests_completed)
            slowdowns.append(ComparisonResult(baseline,
                                              protected).slowdown_percent)
            mitigations.append(protected.mitigation_commands)
        count = len(act_rates)
        rows.append({
            "page_policy": policy.value,
            "acts_per_request": sum(act_rates) / count,
            "para_dream_r_slowdown": sum(slowdowns) / count,
            "mitigation_commands": sum(mitigations) // count,
        })
    return ExperimentResult(
        experiment="ablation-page-policy",
        title=f"Open vs closed page policy under PARA DREAM-R "
              f"(T_RH={t_rh})",
        rows=rows,
        paper_reference={"paper's setting": "open page (MOP, Table 2)"},
        notes="closed page turns every access into an ACT, raising the "
              "mitigation rate of rate-proportional trackers",
    )


# ----------------------------------------------------------------------
# Queued scheduling (FCFS vs FR-FCFS)
# ----------------------------------------------------------------------
def run_scheduler(quick: bool = True,
                  requests_per_core: int | None = None,
                  seed: int = DEFAULT_SEED) -> ExperimentResult:
    """FCFS vs FR-FCFS on real workload traffic (open-loop queue).

    Feeds one sub-channel's requests from a calibrated trace into the
    queued scheduler under both policies and reports latency, hit rate
    and the tracker-relevant consequence: FR-FCFS's extra row hits mean
    fewer ACTs for any tracker to see.
    """
    from repro.dram.subchannel import SubChannel
    from repro.mc.controller import SubChannelController
    from repro.mc.scheduler import (QueuedRequest, QueuedScheduler,
                                    SchedulingPolicy)
    from repro.workloads.builder import build_traces

    system = default_system()
    sim = default_sim_config(quick, requests_per_core, seed)
    budget = 6_000 if quick else 20_000
    traces = build_traces("bwaves", system, sim)
    # Open-loop arrivals: each core issues at its closed-loop steady
    # rate (think gap amortised over its MLP slots); the per-core
    # streams are merged in time order.
    arrivals = []
    for trace in traces:
        clock = 0
        step = max(1, int(trace.gap_ps[0]) // system.mlp_per_core)
        for i in range(len(trace)):
            clock += step
            if trace.subchannel[i] != 0:
                continue
            arrivals.append((clock, int(trace.bank[i]),
                             int(trace.row[i])))
    arrivals.sort()
    arrivals = arrivals[:budget]
    rows = []
    for policy in (SchedulingPolicy.FCFS, SchedulingPolicy.FR_FCFS):
        subchannel = SubChannel(0, system.timing,
                                system.organization.banks,
                                system.organization.banks_per_group)
        controller = SubChannelController(subchannel, system.timing, None)
        scheduler = QueuedScheduler(controller, policy)
        for arrival, bank, row in arrivals:
            scheduler.enqueue(QueuedRequest(arrival_ps=arrival,
                                            bank=bank, row=row))
        scheduler.run()
        hits = sum(bank.stats.row_hits for bank in subchannel.banks)
        acts = sum(bank.stats.activations for bank in subchannel.banks)
        rows.append({
            "policy": policy.value,
            "avg_latency_ns": scheduler.stats.average_latency_ps / 1000.0,
            "row_hit_rate": hits / max(hits + acts, 1),
            "activations": acts,
            "reorders": scheduler.stats.reorders,
        })
    return ExperimentResult(
        experiment="ablation-scheduler",
        title="FCFS vs FR-FCFS queued scheduling (open-loop, bwaves)",
        rows=rows,
        paper_reference={"note": "paper/DRAMSim3 use FR-FCFS-class "
                                 "scheduling with MOP"},
        notes="FR-FCFS lifts the hit rate and cuts latency; fewer ACTs "
              "also means fewer tracker events",
    )


# ----------------------------------------------------------------------
# Core-model (MLP) sensitivity
# ----------------------------------------------------------------------
def run_mlp(quick: bool = True, requests_per_core: int | None = None,
            seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Check the Figure 9 orderings across core MLP settings."""
    sim = default_sim_config(quick, requests_per_core, seed)
    rows = []
    for mlp in (8, 16, 32):
        system = replace(default_system(), mlp_per_core=mlp)
        specs = [
            DesignSpec("para-drfmsb",
                       coupled_para_factory(2000, Command.DRFM_SB)),
            DesignSpec("para-dream-r", dream_r_para_factory(2000)),
        ]
        series = sweep_designs(specs, system, sim,
                               workloads=_ablation_profiles(),
                               quick=quick)
        rows.append({
            "mlp_per_core": mlp,
            "para_drfmsb": series["para-drfmsb"].average_slowdown,
            "para_dream_r": series["para-dream-r"].average_slowdown,
            "improvement_factor":
                series["para-drfmsb"].average_slowdown
                / max(series["para-dream-r"].average_slowdown, 1e-9),
        })
    return ExperimentResult(
        experiment="ablation-mlp",
        title="DREAM-R improvement vs core MLP (model robustness)",
        rows=rows,
        paper_reference={"claim": "orderings independent of core model"},
        notes="DREAM-R should beat coupled DRFMsb at every MLP setting",
    )
