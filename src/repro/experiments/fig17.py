"""Figure 17: ABACuS vs DREAM-C vs DREAM-C (2x storage) at T_RH = 125.

The ultra-low-threshold comparison.  Paper: ABACuS 6.7% slowdown at
19 KB/bank; DREAM-C 8.2% at 3 KB/bank (6.33x less storage); DREAM-C with
2x storage beats ABACuS on both axes (slowdown below 6.7% at 6 KB/bank).
"""

from __future__ import annotations

from repro.core.dream_c import dream_c_factory
from repro.core.storage import dream_c_config
from repro.experiments.common import (default_system,
                                      DEFAULT_SEED, DesignSpec,
                                      ExperimentResult, default_sim_config,
                                      sweep_designs)
from repro.sim.config import SystemConfig
from repro.trackers import abacus
from repro.trackers.abacus import abacus_factory

#: The ultra-low threshold of this comparison.
T_RH = 125

PAPER = {
    "abacus": {"slowdown": 6.7, "kb_per_bank": 19.0},
    "dream-c": {"slowdown": 8.2, "kb_per_bank": 3.0},
    "dream-c-2x": {"slowdown": "< 6.7", "kb_per_bank": 6.0},
}


def designs() -> list[DesignSpec]:
    """The three Figure 17 configurations."""
    return [
        DesignSpec("abacus", abacus_factory(T_RH)),
        DesignSpec("dream-c", dream_c_factory(T_RH, randomized=True)),
        DesignSpec("dream-c-2x",
                   dream_c_factory(T_RH, randomized=True,
                                   storage_multiplier=2)),
    ]


def storage_rows() -> list[dict]:
    """Full-size storage of each design (KB per bank)."""
    base = dream_c_config(T_RH)
    doubled = dream_c_config(T_RH, storage_multiplier=2)
    return [
        {"design": "abacus",
         "kb_per_bank": abacus.storage_kb_per_bank(T_RH)},
        {"design": "dream-c", "kb_per_bank": base.sram_kb_per_bank()},
        {"design": "dream-c-2x",
         "kb_per_bank": doubled.sram_kb_per_bank()},
    ]


def run(quick: bool = True, requests_per_core: int | None = None,
        seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate Figure 17 (slowdown panel + storage annotations)."""
    system = default_system()
    sim = default_sim_config(quick, requests_per_core, seed)
    series = sweep_designs(designs(), system, sim, quick=quick)
    storage = {row["design"]: row["kb_per_bank"] for row in storage_rows()}
    rows = [
        {
            "design": name,
            "avg_slowdown": data.average_slowdown,
            "kb_per_bank_full_size": storage[name],
        }
        for name, data in series.items()
    ]
    return ExperimentResult(
        experiment="fig17",
        title=f"ABACuS vs DREAM-C at T_RH={T_RH} (slowdown % + storage)",
        rows=rows,
        paper_reference={k: f"{v['slowdown']}% @ {v['kb_per_bank']}KB/bank"
                         for k, v in PAPER.items()},
        notes="DREAM-C should need ~6.3x less storage than ABACuS; "
              "DREAM-C (2x) should be competitive on slowdown",
    )
