"""Figure 19: PRAC (MOAT) vs MINT (DREAM-R) vs DREAM-C across thresholds.

The cross-family comparison.  PRAC's slowdown (~9.7%) is intrinsic — the
tRP 14 -> 36 ns extension — and flat across thresholds; MINT (DREAM-R)
beats it for T_RH >= 500 (8.4% at 500, falling fast); DREAM-C is about a
quarter of PRAC's slowdown at T_RH = 500.

The PRAC runs use the PRAC-extended system timings against the
normal-timing unprotected baseline, exactly the paper's methodology.
"""

from __future__ import annotations

from repro.core.dream_c import dream_c_factory
from repro.core.dream_r import dream_r_mint_factory
from repro.experiments.common import (default_system,
                                      DEFAULT_SEED, DesignSpec,
                                      ExperimentResult, default_sim_config,
                                      series_rows, sweep_designs)
from repro.sim.config import SystemConfig
from repro.trackers.prac import moat_factory

#: Swept thresholds.
THRESHOLDS = (500, 1000, 2000, 4000)

PAPER = {
    "prac (all T_RH)": "9.7%",
    "mint-dream-r@500": "8.4%",
    "dream-c@500": "~2.6% (0.25x of PRAC)",
}


def designs(thresholds: tuple[int, ...],
            refs_per_window: int) -> list[DesignSpec]:
    """MOAT / DREAM-R / DREAM-C at every threshold."""
    prac_system = SystemConfig.prac(refs_per_window)
    specs = []
    for t_rh in thresholds:
        specs.append(DesignSpec(f"prac-moat-{t_rh}", moat_factory(t_rh),
                                system=prac_system))
        specs.append(DesignSpec(f"mint-dream-r-{t_rh}",
                                dream_r_mint_factory(t_rh)))
        specs.append(DesignSpec(f"dream-c-{t_rh}",
                                dream_c_factory(t_rh, randomized=True)))
    return specs


def run(quick: bool = True, requests_per_core: int | None = None,
        seed: int = DEFAULT_SEED,
        thresholds: tuple[int, ...] = THRESHOLDS) -> ExperimentResult:
    """Regenerate Figure 19."""
    system = default_system()
    sim = default_sim_config(quick, requests_per_core, seed)
    refs = system.timing.refs_per_window
    series = sweep_designs(designs(thresholds, refs), system, sim,
                           quick=quick)
    return ExperimentResult(
        experiment="fig19",
        title="PRAC (MOAT) vs MINT (DREAM-R) vs DREAM-C (slowdown %)",
        rows=series_rows(series),
        paper_reference=PAPER,
        notes="PRAC flat across thresholds (intrinsic); DREAM designs "
              "should undercut it for T_RH >= 500",
    )
