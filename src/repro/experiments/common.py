"""Shared machinery for the per-table / per-figure experiments.

Every experiment module exposes ``run(quick=True, ...) -> ExperimentResult``.
Quick mode sweeps the representative workload subset with a smaller
request budget (suitable for the default benchmark run); full mode sweeps
all 22 workloads.  ``REPRO_FULL=1`` in the environment switches the
benchmark harness to full mode.

The central helper, :func:`sweep_designs`, decomposes a sweep into
independent cells — one unprotected baseline plus one mitigated run per
design, per workload — and submits them through a
:class:`repro.exec.SweepExecutor`.  The baseline is shared across every
design (the runs are perfectly paired because traces are deterministic
per (workload, system, seed)); with an ambient executor activated
(``repro.exec.runtime``), it is also shared across *experiments*, fanned
over a worker pool, and served from the content-addressed run cache.
Results are merged back in a fixed (workload × design) order, so serial,
parallel and cached executions render byte-identical tables.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field

from repro.analysis.slowdown import SlowdownSeries
from repro.exec import runtime as exec_runtime
from repro.exec.executor import Cell, SweepExecutor, cell_fingerprint
from repro.exec.fingerprint import fingerprint as _fingerprint
from repro.mc.policy import PolicyFactory
from repro.sim.config import SimConfig, SystemConfig
from repro.sim.results import ComparisonResult
from repro.workloads.profiles import WorkloadProfile, profiles_for

#: Default per-core request budget in quick / full mode.
QUICK_REQUESTS = 8_000
FULL_REQUESTS = 25_000

#: Default refresh-window scale for the performance experiments: 32 REFs
#: = ~125 us windows, so the default request budgets span one (quick) to
#: several (full) complete refresh windows.
DEFAULT_REFS_PER_WINDOW = 32

#: Default master seed.
DEFAULT_SEED = 2025

#: Valid sweep modes: the representative subset or all 22 workloads.
MODES = ("quick", "full")

#: Valid engine backends: the scalar reference loop, the batched
#: columnar loop, or automatic per-sweep selection.
BACKENDS = ("scalar", "batched", "auto")

#: ``auto`` engages the batched backend only when a compatible group
#: has at least this many cells — below that the columnar setup cost
#: outweighs the amortised dispatch.
AUTO_BATCH_MIN = 4

#: Largest single engine batch: beyond ~512 cells the stacked state
#: arrays outgrow cache and per-event cost climbs back up (see
#: ``benchmarks/bench_engine.py``); bigger groups are chunked.
MAX_BATCH_CELLS = 512


@dataclass(frozen=True)
class RunOptions:
    """Unified run parameters for every experiment runner.

    Replaces the historical ``run(quick=True, requests_per_core=None,
    seed=...)`` kwarg soup with one frozen record that the CLI, the
    benchmark harness and library users all construct the same way and
    thread through :func:`repro.experiments.registry.run_experiment`.

    Parameters
    ----------
    mode:
        ``"quick"`` (representative workload subset, default) or
        ``"full"`` (all 22 workloads).
    requests_per_core:
        Per-core request-budget override; ``None`` uses the mode's
        default (:data:`QUICK_REQUESTS` / :data:`FULL_REQUESTS`).
    seed:
        Master seed deriving every per-cell seed.
    retries:
        Per-cell retry budget for the sweep executor (``None`` keeps the
        executor's default).
    timeout_s:
        Per-attempt wall-clock timeout in seconds (``None`` = no limit).
    resume:
        Resume from the sweep checkpoint next to the run cache, skipping
        cells a previous (interrupted) run already completed.  Only
        meaningful when a cache-backed executor is active.
    backend:
        Engine backend: ``"scalar"`` (the reference event loop,
        default), ``"batched"`` (the columnar batch engine for every
        compatible cell), or ``"auto"`` (batched only where
        :func:`plan_backends` finds a group of at least
        :data:`AUTO_BATCH_MIN` policy-free compatible cells).  All
        backends produce byte-identical results; the choice only
        affects throughput and cache fingerprints (non-scalar runs are
        keyed separately).
    """

    mode: str = "quick"
    requests_per_core: int | None = None
    seed: int = DEFAULT_SEED
    retries: int | None = None
    timeout_s: float | None = None
    resume: bool = False
    backend: str = "scalar"

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, "
                             f"got {self.mode!r}")
        if self.requests_per_core is not None and \
                self.requests_per_core <= 0:
            raise ValueError("requests_per_core must be positive")
        if self.retries is not None and self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {self.backend!r}")

    @property
    def quick(self) -> bool:
        """Whether this is a quick-mode (subset) run."""
        return self.mode == "quick"

    def to_dict(self) -> dict:
        """Plain-data rendering: the canonical wire format.

        Every field is present explicitly (no default elision), so two
        equal records always serialize identically — the sweep service
        and its client exchange exactly this shape.
        """
        return {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "RunOptions":
        """Inverse of :meth:`to_dict`, validating field names and values.

        Raises :class:`ValueError` on anything that is not a dict of
        known fields with valid values — the service maps that straight
        to a 400 response.
        """
        if not isinstance(data, dict):
            raise ValueError(f"options must be an object, "
                             f"got {type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown RunOptions fields: "
                             f"{', '.join(unknown)}")
        for name, value in data.items():
            expected, optional = _WIRE_TYPES[name]
            ok = (value is None and optional) or (
                isinstance(value, expected) and not
                (expected is not bool and isinstance(value, bool)))
            if not ok:
                raise ValueError(
                    f"RunOptions field {name!r} cannot be {value!r}")
        try:
            return cls(**data)
        except TypeError as error:
            raise ValueError(str(error)) from None

    def to_json(self) -> str:
        """JSON wire rendering (sorted keys, so equal records are
        byte-identical)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunOptions":
        """Inverse of :meth:`to_json` (same validation as
        :meth:`from_dict`)."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"options are not valid JSON: {error}") \
                from None
        return cls.from_dict(data)

    def wants_resilience(self) -> bool:
        """Whether any executor-facing knob deviates from the default."""
        return (self.retries is not None or self.timeout_s is not None
                or self.resume)

    def describe(self) -> str:
        parts = [f"mode={self.mode}", f"seed={self.seed}"]
        if self.requests_per_core is not None:
            parts.append(f"requests_per_core={self.requests_per_core}")
        if self.retries is not None:
            parts.append(f"retries={self.retries}")
        if self.timeout_s is not None:
            parts.append(f"timeout_s={self.timeout_s:g}")
        if self.resume:
            parts.append("resume")
        if self.backend != "scalar":
            parts.append(f"backend={self.backend}")
        return " ".join(parts)


#: Accepted wire types per :class:`RunOptions` field (type-or-types,
#: may-be-null); :meth:`RunOptions.from_dict` enforces this before
#: value validation so a malformed submission reads as a clean 400.
_WIRE_TYPES = {
    "mode": (str, False),
    "requests_per_core": (int, True),
    "seed": (int, False),
    "retries": (int, True),
    "timeout_s": ((int, float), True),
    "resume": (bool, False),
    "backend": (str, False),
}


def full_mode_enabled() -> bool:
    """Whether ``REPRO_FULL=1`` asks benches for the full sweep."""
    return os.environ.get("REPRO_FULL", "") == "1"


def default_system(num_cores: int = 8) -> SystemConfig:
    """Standard scaled system for the performance experiments.

    Uses the 32-REF window (~125 us, 512 rows/bank) so that the default
    request budgets cover one or more full refresh windows — required for
    the counter-based designs (DREAM-C, Graphene, ABACuS) whose dynamics
    play out across whole windows.
    """
    return SystemConfig.baseline(DEFAULT_REFS_PER_WINDOW, num_cores)


def default_sim_config(quick: bool,
                       requests_per_core: int | None = None,
                       seed: int = DEFAULT_SEED) -> SimConfig:
    """Standard run-control parameters for an experiment."""
    if requests_per_core is None:
        requests_per_core = QUICK_REQUESTS if quick else FULL_REQUESTS
    return SimConfig(requests_per_core=requests_per_core, seed=seed)


@dataclass(frozen=True)
class DesignSpec:
    """One design under test in a sweep.

    ``system`` overrides the hardware configuration for the *mitigated*
    run only (PRAC's extended timings); the baseline always runs on the
    unmodified system, which is exactly how the paper measures PRAC's
    intrinsic slowdown.
    """

    name: str
    factory: PolicyFactory
    system: SystemConfig | None = None


@dataclass
class ExperimentResult:
    """Outcome of one experiment: rows plus the paper's reference values."""

    experiment: str
    title: str
    rows: list[dict] = field(default_factory=list)
    paper_reference: dict = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        """Human-readable rendering of the experiment's rows."""
        lines = [f"== {self.experiment}: {self.title} =="]
        if self.rows:
            keys = list(self.rows[0].keys())
            widths = {
                key: max(len(key), *(len(_fmt(row.get(key)))
                                     for row in self.rows))
                for key in keys
            }
            lines.append("  ".join(key.ljust(widths[key]) for key in keys))
            for row in self.rows:
                lines.append("  ".join(
                    _fmt(row.get(key)).ljust(widths[key]) for key in keys))
        if self.paper_reference:
            lines.append("paper reference: " + ", ".join(
                f"{key}={value}" for key, value in
                self.paper_reference.items()))
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)

    def row_by(self, **criteria) -> dict:
        """First row matching all key/value criteria."""
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                return row
        raise KeyError(f"no row matching {criteria}")

    def to_json(self) -> str:
        """JSON rendering (experiment, title, rows, references, notes)."""
        return json.dumps({
            "experiment": self.experiment,
            "title": self.title,
            "rows": self.rows,
            "paper_reference": {str(k): str(v)
                                for k, v in self.paper_reference.items()},
            "notes": self.notes,
        }, indent=2, default=str)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def sweep_cells(designs: list[DesignSpec],
                system: SystemConfig,
                sim: SimConfig,
                workloads: list[WorkloadProfile]) -> list[Cell]:
    """The sweep's independent cells in canonical (workload × design)
    order: for each workload, the shared baseline first, then one cell
    per design."""
    cells: list[Cell] = []
    for workload in workloads:
        cells.append(Cell(workload=workload, trace_system=system,
                          run_system=system, sim=sim, policy=None,
                          policy_name="none"))
        for spec in designs:
            target = spec.system if spec.system is not None else system
            cells.append(Cell(workload=workload, trace_system=system,
                              run_system=target, sim=sim,
                              policy=spec.factory,
                              policy_name=spec.name))
    return cells


@dataclass(frozen=True)
class BatchPlan:
    """Resolved backend assignment for one cell list.

    ``backends[i]`` is the engine the *i*-th cell runs on (``"scalar"``
    or ``"batched"``); ``groups`` are the batched cell indices, one
    tuple per engine invocation — every member of a group shares a
    canonically-equal ``run_system`` and no group exceeds
    :data:`MAX_BATCH_CELLS`.
    """

    backends: tuple[str, ...]
    groups: tuple[tuple[int, ...], ...]

    @property
    def batched_cells(self) -> int:
        return sum(len(group) for group in self.groups)


def plan_backends(cells: list[Cell], backend: str = "scalar",
                  max_batch: int = MAX_BATCH_CELLS) -> BatchPlan:
    """Group compatible cells into engine batches.

    A cell is *batchable* when it can cross a process boundary and be
    cache-keyed (``policy`` is ``None`` or a spec, the cell
    fingerprints) and its ``run_system`` models a single channel — the
    batch engine's layout constraint.  Batchable cells are grouped by
    canonically-equal ``run_system`` (the engine stacks state for one
    hardware shape per invocation):

    * ``backend="batched"`` batches every batchable cell, mitigation
      policies included (their misses take the engine's escape hatch);
    * ``backend="auto"`` batches only *policy-free* cells, and only
      groups of at least :data:`AUTO_BATCH_MIN` — policy-bearing cells
      escape on every miss, so batching them buys nothing, and tiny
      groups don't amortise the columnar setup;
    * ``backend="scalar"`` batches nothing.

    The plan is a pure function of the cell list, so fingerprints
    derived from it are stable across serial/parallel/cached runs.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, "
                         f"got {backend!r}")
    backends = ["scalar"] * len(cells)
    if backend == "scalar":
        return BatchPlan(backends=tuple(backends), groups=())
    grouped: dict[str, list[int]] = {}
    for index, cell in enumerate(cells):
        if backend == "auto" and cell.policy is not None:
            continue
        if cell.run_system.organization.channels != 1:
            continue
        if cell_fingerprint(cell, backend="batched") is None:
            continue
        grouped.setdefault(_fingerprint(run_system=cell.run_system),
                           []).append(index)
    groups: list[tuple[int, ...]] = []
    for indices in grouped.values():
        if backend == "auto" and len(indices) < AUTO_BATCH_MIN:
            continue
        for start in range(0, len(indices), max_batch):
            chunk = indices[start:start + max_batch]
            groups.append(tuple(chunk))
            for index in chunk:
                backends[index] = "batched"
    return BatchPlan(backends=tuple(backends), groups=tuple(groups))


def sweep_designs(designs: list[DesignSpec],
                  system: SystemConfig,
                  sim: SimConfig,
                  workloads: list[WorkloadProfile] | None = None,
                  quick: bool = True) -> dict[str, SlowdownSeries]:
    """Run every design against every workload with shared baselines.

    Cells are submitted through the ambient
    :class:`~repro.exec.SweepExecutor` when one is activated
    (``repro.exec.runtime``), which brings cross-experiment baseline
    sharing, the run cache and ``--jobs N`` fan-out; otherwise a private
    serial executor reproduces the historical behaviour.  Ambient
    telemetry (``repro.obs.runtime``) composes with all of it: each cell
    captures its telemetry where it executes and the executor merges the
    snapshots deterministically in cell order (see
    ``docs/observability.md``).
    """
    if workloads is None:
        workloads = profiles_for(quick=quick)
    executor = exec_runtime.active()
    if executor is None:
        executor = SweepExecutor()
    results = executor.run_cells(sweep_cells(designs, system, sim,
                                             workloads))
    series = {spec.name: SlowdownSeries(spec.name) for spec in designs}
    cursor = iter(results)
    for _workload in workloads:
        baseline = next(cursor)
        for spec in designs:
            series[spec.name].add(ComparisonResult(baseline, next(cursor)))
    return series


def series_rows(series: dict[str, SlowdownSeries]) -> list[dict]:
    """Flatten sweep results into per-workload result rows.

    Every design must cover the same workload set — a mismatch means the
    sweep lost or mixed up cells, and silently trusting the first design
    would render a table with misleading holes.
    """
    if not series:
        return []
    coverage = {design: frozenset(data.slowdowns)
                for design, data in series.items()}
    reference_design, reference = next(iter(coverage.items()))
    mismatched = {design: workloads
                  for design, workloads in coverage.items()
                  if workloads != reference}
    if mismatched:
        details = "; ".join(
            f"{design}: {sorted(reference ^ workloads)}"
            for design, workloads in mismatched.items())
        raise ValueError(
            f"designs cover different workload sets (vs "
            f"{reference_design}): {details}")
    rows: list[dict] = []
    for workload in sorted(reference):
        row: dict = {"workload": workload}
        for design, data in series.items():
            row[design] = data.slowdowns[workload]
        rows.append(row)
    average: dict = {"workload": "AVERAGE"}
    for design, data in series.items():
        average[design] = data.average_slowdown
    rows.append(average)
    return rows
