"""Section 5.5: worst-case DoS impact of DREAM-C.

Analytic bound plus a measured run: an attacker cycling through the rows
of one gang forces back-to-back mitigation rounds; the paper bounds the
throughput reduction at ~3x (comparable to ordinary memory-contention
attacks).  The measured part hammers a real DREAM-C policy with the
gang-focused pattern and reports the realised activation throughput
against an unprotected run of the same pattern.
"""

from __future__ import annotations

from repro.analysis.dos import analyze_dos
from repro.core.storage import vertical_factor
from repro.analysis.harness import AttackHarness
from repro.core.dream_c import DreamCPolicy, dream_c_factory
from repro.experiments.common import DEFAULT_SEED, ExperimentResult
from repro.mc.policy import no_mitigation_factory
from repro.workloads.attacks import gang_dos_rows

#: Thresholds of the analysis.
THRESHOLDS = (125, 250, 500)


def measured_dos_factor(t_rh: int, seed: int,
                        activations: int = 4_000) -> float:
    """Measured throughput reduction of the gang-focused attack.

    Both the attacked and the baseline run issue at bus pace (the
    attacker pipelines accesses across the gang's banks, as the paper's
    analytic bound assumes); the factor is the ratio of completion times.
    """
    harness = AttackHarness(dream_c_factory(t_rh, randomized=True),
                            seed=seed)
    harness.pipeline_step_ps = harness.timing.t_bus
    policy = harness.policy
    assert isinstance(policy, DreamCPolicy)
    gang_rows = policy.mapper.gang_rows_by_bank(0)
    pattern = gang_dos_rows(gang_rows, activations)
    harness.run(pattern)
    baseline = AttackHarness(no_mitigation_factory(), seed=seed)
    baseline.pipeline_step_ps = baseline.timing.t_bus
    baseline.run(pattern)
    return harness.last_finish_ps / baseline.last_finish_ps


def run(quick: bool = True, requests_per_core: int | None = None,
        seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate the Section 5.5 DoS analysis."""
    rows = []
    for t_rh in THRESHOLDS:
        analysis = analyze_dos(t_rh, vertical=vertical_factor(t_rh))
        rows.append({
            "t_rh": t_rh,
            "acts_per_round": analysis.activations_per_round,
            "attack_time_ns": analysis.attack_time_ps / 1000.0,
            "block_time_ns": analysis.mitigation_block_ps / 1000.0,
            "analytic_factor": analysis.throughput_factor,
            "measured_factor": measured_dos_factor(
                t_rh, seed, activations=2_000 if quick else 8_000),
        })
    return ExperimentResult(
        experiment="dos",
        title="DREAM-C worst-case DoS throughput reduction",
        rows=rows,
        paper_reference={"T=125": "~3x throughput reduction "
                                  "(213 ns attack, 411 ns block)"},
        notes="the factor should stay in the single digits — comparable "
              "to row-buffer-conflict contention attacks",
    )
