"""Figure 11: inter-selection distance of PARA vs MINT (Monte Carlo).

Four banks, 1000 activations each, PARA with p = 1/100 and MINT with
W = 100: PARA's IID selection clusters (exponential distances, many short
gaps that force early DRFMs under DREAM-R); MINT's URAND selection is
well spaced (triangular distances centred at W).
"""

from __future__ import annotations

from repro.analysis.selection import (distance_statistics,
                                      monte_carlo_selections)
from repro.experiments.common import DEFAULT_SEED, ExperimentResult

#: Figure 11 parameters.
WINDOW = 100
ACTIVATIONS = 1000
BANKS = 4


def run(quick: bool = True, requests_per_core: int | None = None,
        seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate Figure 11 (plus large-sample distribution summaries)."""
    selections = monte_carlo_selections(WINDOW, ACTIVATIONS, BANKS,
                                        seed=seed)
    sample_size = 50_000 if quick else 500_000
    stats = distance_statistics(WINDOW, activations=sample_size, seed=seed)
    rows = []
    for tracker in ("para", "mint"):
        summary = stats[tracker]
        per_bank = [len(positions)
                    for positions in selections[tracker]]
        rows.append({
            "tracker": tracker,
            "selections_per_bank_1000acts": per_bank,
            "mean_distance": summary.mean,
            "std_distance": summary.std,
            "p10": summary.p10,
            "p90": summary.p90,
            "short_gap_fraction": summary.short_fraction,
        })
    return ExperimentResult(
        experiment="fig11",
        title="Inter-selection distance of PARA (p=1/100) vs MINT (W=100)",
        rows=rows,
        paper_reference={
            "para": "exponential distances, many short gaps",
            "mint": "triangular distances centred at W",
        },
        notes="PARA std ~ mean (exponential); MINT std ~ W/sqrt(6) ~ 0.41W "
              "(triangular); PARA short-gap fraction >> MINT's",
    )
