"""Table 1: Graphene storage overhead versus the Rowhammer threshold.

Analytic reproduction: the Misra-Gries table needs one entry per tracker
threshold's worth of per-bank activations in a refresh window (~600K),
with 17-bit CAM tags — 4.1 / 7.9 / 15.2 KB per bank at T_RH = 1000 /
500 / 250, doubling as the threshold halves.
"""

from __future__ import annotations

from repro.experiments.common import DEFAULT_SEED, ExperimentResult
from repro.trackers.graphene import (entries_for_threshold,
                                     storage_kb_per_bank)

#: Thresholds of the paper's table.
THRESHOLDS = (250, 500, 1000)

PAPER = {
    250: {"kb_per_bank": 15.2, "entries": 4800},
    500: {"kb_per_bank": 7.9, "entries": 2400},
    1000: {"kb_per_bank": 4.1, "entries": 1200},
}

#: Banks per sub-channel, for the per-sub-channel column.
SUBCHANNEL_BANKS = 32


def run(quick: bool = True, requests_per_core: int | None = None,
        seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate Table 1."""
    rows = []
    for t_rh in THRESHOLDS:
        kb = storage_kb_per_bank(t_rh)
        rows.append({
            "t_rh": t_rh,
            "entries": entries_for_threshold(t_rh),
            "kb_per_bank": kb,
            "kb_per_subchannel": kb * SUBCHANNEL_BANKS,
            "paper_entries": PAPER[t_rh]["entries"],
            "paper_kb_per_bank": PAPER[t_rh]["kb_per_bank"],
        })
    return ExperimentResult(
        experiment="table1",
        title="Graphene storage overhead vs T_RH",
        rows=rows,
        paper_reference={f"T={t}": f"{v['kb_per_bank']}KB/bank, "
                         f"{v['entries']} entries"
                         for t, v in PAPER.items()},
        notes="storage should double each time the threshold halves",
    )
