"""Motivation experiments: why MC-side mitigation (Sections 1-2, 8).

Two studies back the paper's motivation narrative:

* **TRR bypass** — in-DRAM sampler-based TRR against the classic and
  the engineered (decoy-shadowing, Blacksmith-style) patterns, with
  bit-flip outcomes on the disturbance model; the same patterns against
  DREAM-R stay bounded.
* **PRAC extrinsic slowdown** — MOAT's Alert-Back-Off is quiescent for
  benign workloads (Figure 19 measures only the intrinsic timing tax),
  but an adversarial hammer triggers ABO storms; this study measures the
  extrinsic slowdown an attacker can inflict on a PRAC system versus the
  same attack against DREAM-R.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.harness import AttackHarness
from repro.core.dream_r import dream_r_mint_factory
from repro.dram.disturbance import DisturbanceConfig, DisturbanceModel
from repro.experiments.common import (DEFAULT_SEED, ExperimentResult,
                                      default_sim_config, default_system)
from repro.mc.policy import PolicyFactory, no_mitigation_factory
from repro.trackers.trr import trr_factory
from repro.workloads.attacks import blacksmith, double_sided

#: Disturbance units at which the modelled device flips (~T_RH = 600
#: double-sided).
DEVICE_FLIP_UNITS = 1200


def _decoy_pattern(rounds: int) -> list[int]:
    """TRRespass-style decoy shadowing (see tests/test_trr.py)."""
    pattern: list[int] = []
    for _ in range(rounds):
        for decoy in (100, 200, 300, 400):
            pattern.extend([decoy] * 3)
        for target in (10, 12):
            pattern.extend([target] * 2)
    return pattern


def _attack_outcome(factory: PolicyFactory, pattern, seed: int) -> dict:
    harness = AttackHarness(factory, seed=seed)
    model = DisturbanceModel(DisturbanceConfig(t_rh=DEVICE_FLIP_UNITS),
                             rows_per_bank=512, seed=seed)
    harness.attach_disturbance(model)
    result = harness.run(np.asarray(pattern), bank=0)
    return {
        "peak_streak": result.max_unmitigated,
        "mitigations": result.mitigations,
        "bit_flips": len(model.flips),
    }


def run_trr_bypass(quick: bool = True,
                   requests_per_core: int | None = None,
                   seed: int = DEFAULT_SEED) -> ExperimentResult:
    """The TRR-bypass study (motivation for MC-side mitigation)."""
    rounds = 2_000 if quick else 6_000
    acts = 16_000 if quick else 48_000
    patterns = {
        "double-sided": double_sided(10, 12, acts),
        "decoy-shadow": _decoy_pattern(rounds),
        "blacksmith": blacksmith([10, 12, 14], [8, 4, 1], [0, 3, 9],
                                 acts),
    }
    defenses = {
        "none": no_mitigation_factory(),
        "trr": trr_factory(entries=4),
        "mint-dream-r": dream_r_mint_factory(500),
    }
    rows = []
    for pattern_name, pattern in patterns.items():
        for defense_name, factory in defenses.items():
            outcome = _attack_outcome(factory, pattern, seed)
            rows.append({
                "pattern": pattern_name,
                "defense": defense_name,
                **outcome,
            })
    return ExperimentResult(
        experiment="motivation-trr",
        title="In-DRAM TRR vs engineered patterns (bit-flip outcomes)",
        rows=rows,
        paper_reference={
            "section 2.3": "deployed in-DRAM trackers (TRR) have been "
                           "broken with simple patterns",
        },
        notes="TRR stops the naive hammer but flips under decoy "
              "shadowing; DREAM-R stays bounded on every pattern",
    )


def run_prac_extrinsic(quick: bool = True,
                       requests_per_core: int | None = None,
                       seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Adversarial extrinsic slowdown of PRAC (ABO storms) vs DREAM-R.

    Hammers W rows round-robin in every bank position of one sub-channel
    while measuring achieved attacker throughput; MOAT's ABO fires once
    per ``ATH`` activations per row and stalls the whole sub-channel,
    whereas DREAM-R's DRFMsb amortises over 8 banks.
    """
    from repro.trackers.prac import moat_factory

    t_rh = 500
    acts = 20_000 if quick else 60_000
    # Hammer one row in each of 8 banks: concentrates per-row pressure
    # (driving PRAC counters past ATH every refresh window) without
    # self-limiting on any single bank's row cycle.
    flat = [(bank, 4 * bank) for bank in range(8)]
    pattern = [flat[i % len(flat)] for i in range(acts)]
    rows = []
    for name, factory in (
            ("none", no_mitigation_factory()),
            ("prac-moat", moat_factory(t_rh)),
            ("mint-dream-r", dream_r_mint_factory(t_rh))):
        harness = AttackHarness(factory, seed=seed)
        harness.run(pattern)
        blocked = sum(bank.stats.blocked_time_ps
                      for bank in harness.subchannel.banks)
        rows.append({
            "defense": name,
            "attack_time_us": harness.now_ps / 1e6,
            "bank_blocked_us": blocked / 1e6,
            "mitigations": harness.subchannel.stats.mitigation_commands,
        })
    baseline_time = rows[0]["attack_time_us"]
    for row in rows:
        row["slowdown_factor"] = row["attack_time_us"] / baseline_time
    return ExperimentResult(
        experiment="motivation-prac-extrinsic",
        title="Adversarial extrinsic slowdown: PRAC ABO vs DREAM-R",
        rows=rows,
        paper_reference={
            "section 7.1": "extrinsic slowdown depends on design "
                           "choices and T_RH; negligible for benign "
                           "workloads",
        },
        notes="an attacker can force mitigations on either design; the "
              "factor stays in contention-attack range for both",
    )
