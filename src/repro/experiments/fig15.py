"""Figure 15: DREAM-C grouping functions and threshold sensitivity.

Top: set-associative vs randomized grouping at T_RH = 500 — hot pages
stripe to the same RowID in every bank, so set-associative gangs heat up
and trigger frequent DRFMabs (paper: 14.4% average, >70% for lbm/parest)
while randomized grouping spreads the heat (2.6%).

Bottom: randomized grouping swept over T_RH in {250, 500, 1000} —
paper averages 5.1% / 2.6% / 0.8%.
"""

from __future__ import annotations

from repro.core.dream_c import dream_c_factory
from repro.experiments.common import (default_system,
                                      DEFAULT_SEED, DesignSpec,
                                      ExperimentResult, default_sim_config,
                                      series_rows, sweep_designs)
from repro.sim.config import SystemConfig

#: Threshold of the grouping comparison (top panel).
GROUPING_T_RH = 500

#: Thresholds of the sensitivity sweep (bottom panel).
THRESHOLDS = (250, 500, 1000)

PAPER_AVERAGES = {
    "dream-c-assoc-500": 14.4,
    "dream-c-rand-250": 5.1,
    "dream-c-rand-500": 2.6,
    "dream-c-rand-1000": 0.8,
}


def designs() -> list[DesignSpec]:
    """Both panels' configurations in one sweep."""
    specs = [DesignSpec(f"dream-c-assoc-{GROUPING_T_RH}",
                        dream_c_factory(GROUPING_T_RH, randomized=False))]
    for t_rh in THRESHOLDS:
        specs.append(DesignSpec(f"dream-c-rand-{t_rh}",
                                dream_c_factory(t_rh, randomized=True)))
    return specs


def run(quick: bool = True, requests_per_core: int | None = None,
        seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate Figure 15 (both panels)."""
    system = default_system()
    sim = default_sim_config(quick, requests_per_core, seed)
    series = sweep_designs(designs(), system, sim, quick=quick)
    return ExperimentResult(
        experiment="fig15",
        title="DREAM-C grouping (T_RH=500) and threshold sensitivity "
              "(slowdown %)",
        rows=series_rows(series),
        paper_reference={f"avg {k}": f"{v}%"
                         for k, v in PAPER_AVERAGES.items()},
        notes="set-associative grouping should be several times worse than "
              "randomized; randomized slowdown should fall with T_RH",
    )
