"""Figure 10: DREAM-R sensitivity to the Rowhammer threshold.

PARA (DREAM-R) and MINT (DREAM-R) swept over T_RH in {0.5K, 1K, 2K, 4K}.
Paper averages: PARA 16.75 / 8.4 / 4.24 / 2.14 %, MINT 8.4 / 4.23 / 2.1 /
1.06 % — slowdown roughly halves as the threshold doubles, and MINT stays
at about half of PARA throughout.
"""

from __future__ import annotations

from repro.core.dream_r import dream_r_mint_factory, dream_r_para_factory
from repro.experiments.common import (default_system,
                                      DEFAULT_SEED, DesignSpec,
                                      ExperimentResult, default_sim_config,
                                      series_rows, sweep_designs)
from repro.sim.config import SystemConfig

#: Swept thresholds.
THRESHOLDS = (500, 1000, 2000, 4000)

PAPER_AVERAGES = {
    ("para", 500): 16.75, ("para", 1000): 8.4,
    ("para", 2000): 4.24, ("para", 4000): 2.14,
    ("mint", 500): 8.4, ("mint", 1000): 4.23,
    ("mint", 2000): 2.1, ("mint", 4000): 1.06,
}


def designs(thresholds: tuple[int, ...] = THRESHOLDS) -> list[DesignSpec]:
    """DREAM-R PARA and MINT at every threshold."""
    specs = []
    for t_rh in thresholds:
        specs.append(DesignSpec(f"para-dream-r-{t_rh}",
                                dream_r_para_factory(t_rh)))
        specs.append(DesignSpec(f"mint-dream-r-{t_rh}",
                                dream_r_mint_factory(t_rh)))
    return specs


def run(quick: bool = True, requests_per_core: int | None = None,
        seed: int = DEFAULT_SEED,
        thresholds: tuple[int, ...] = THRESHOLDS) -> ExperimentResult:
    """Regenerate Figure 10."""
    system = default_system()
    sim = default_sim_config(quick, requests_per_core, seed)
    series = sweep_designs(designs(thresholds), system, sim, quick=quick)
    return ExperimentResult(
        experiment="fig10",
        title="DREAM-R slowdown vs T_RH (slowdown %)",
        rows=series_rows(series),
        paper_reference={f"{tracker}@{t}": f"{value}%"
                         for (tracker, t), value in PAPER_AVERAGES.items()},
        notes="slowdown should roughly halve per threshold doubling; "
              "MINT below PARA at every point",
    )
