"""Table 6: DREAM-C configurations and storage versus Graphene (analytic).

Gang size, DRFMab count and SRAM per bank for T_RH in {125, 250, 500,
1000}, with vertical sharing doubling the gang (and halving the DCT)
every time the threshold doubles — 8x less storage than Graphene at
T_RH = 500, without CAM lookups.
"""

from __future__ import annotations

from repro.core.storage import compare_storage, dream_c_config
from repro.experiments.common import DEFAULT_SEED, ExperimentResult

#: Thresholds of the paper's table.
THRESHOLDS = (125, 250, 500, 1000)

PAPER = {
    125: {"gang": 32, "drfm": 1, "dream_kb": 3.0, "graphene_kb": 29.3},
    250: {"gang": 64, "drfm": 2, "dream_kb": 1.75, "graphene_kb": 15.2},
    500: {"gang": 128, "drfm": 4, "dream_kb": 1.0, "graphene_kb": 7.9},
    1000: {"gang": 256, "drfm": 8, "dream_kb": 0.56, "graphene_kb": 4.1},
}


def run(quick: bool = True, requests_per_core: int | None = None,
        seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate Table 6."""
    rows = []
    for t_rh in THRESHOLDS:
        config = dream_c_config(t_rh)
        comparison = compare_storage(t_rh)
        rows.append({
            "t_rh": t_rh,
            "gang_size": config.gang_size,
            "num_drfmab": config.drfms_per_mitigation,
            "dream_c_kb_per_bank": config.sram_kb_per_bank(),
            "graphene_kb_per_bank": comparison.graphene_kb,
            "graphene_ratio": comparison.graphene_ratio,
            "paper_dream_kb": PAPER[t_rh]["dream_kb"],
            "paper_graphene_kb": PAPER[t_rh]["graphene_kb"],
        })
    return ExperimentResult(
        experiment="table6",
        title="DREAM-C configurations (gang size, DRFMab count, SRAM/bank)",
        rows=rows,
        paper_reference={f"T={t}": f"gang {v['gang']}, {v['drfm']} DRFMab, "
                         f"{v['dream_kb']}KB vs Graphene "
                         f"{v['graphene_kb']}KB"
                         for t, v in PAPER.items()},
        notes="expect ~8x less storage than Graphene at T_RH = 500",
    )
