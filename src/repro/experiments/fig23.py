"""Figure 23 (Appendix D): multi-program SPEC mixes.

Ten 8-core mixes of random SPEC2017 workloads, comparing MOAT (PRAC),
MINT (DREAM-R) and DREAM-C.  Paper at T_RH = 500: DREAM-C about one third
of PRAC's slowdown; DREAM-R (9.3%) just under PRAC (9.7%); both DREAM
variants below PRAC for T_RH >= 500.
"""

from __future__ import annotations

from repro.analysis.slowdown import SlowdownSeries
from repro.core.dream_c import dream_c_factory
from repro.core.dream_r import dream_r_mint_factory
from repro.experiments.common import (default_system,
                                      DEFAULT_SEED, DesignSpec,
                                      ExperimentResult, default_sim_config)
from repro.sim.config import SystemConfig
from repro.sim.results import ComparisonResult
from repro.sim.runner import run_simulation
from repro.trackers.prac import moat_factory
from repro.workloads.mixes import NUM_MIXES, build_mix_traces

#: Threshold of the mix comparison.
T_RH = 500

PAPER = {
    "prac-moat": "9.7%",
    "mint-dream-r": "9.3%",
    "dream-c": "~one third of PRAC",
}


def designs(refs_per_window: int) -> list[DesignSpec]:
    """The three Figure 23 designs at T_RH = 500."""
    prac_system = SystemConfig.prac(refs_per_window)
    return [
        DesignSpec("prac-moat", moat_factory(T_RH), system=prac_system),
        DesignSpec("mint-dream-r", dream_r_mint_factory(T_RH)),
        DesignSpec("dream-c", dream_c_factory(T_RH, randomized=True)),
    ]


def run(quick: bool = True, requests_per_core: int | None = None,
        seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate Figure 23."""
    system = default_system()
    sim = default_sim_config(quick, requests_per_core, seed)
    mixes = range(3) if quick else range(NUM_MIXES)
    specs = designs(system.timing.refs_per_window)
    series = {spec.name: SlowdownSeries(spec.name) for spec in specs}
    for index in mixes:
        traces = build_mix_traces(index, system, sim)
        baseline = run_simulation(system, traces, sim)
        for spec in specs:
            target = spec.system if spec.system is not None else system
            mitigated = run_simulation(target, traces, sim, spec.factory,
                                       spec.name)
            series[spec.name].add(ComparisonResult(baseline, mitigated))
    rows = []
    for name in sorted(series[specs[0].name].slowdowns):
        row: dict = {"mix": name}
        for spec in specs:
            row[spec.name] = series[spec.name].slowdowns[name]
        rows.append(row)
    average: dict = {"mix": "AVERAGE"}
    for spec in specs:
        average[spec.name] = series[spec.name].average_slowdown
    rows.append(average)
    return ExperimentResult(
        experiment="fig23",
        title=f"Multi-program mixes at T_RH={T_RH} (slowdown %)",
        rows=rows,
        paper_reference=PAPER,
        notes="both DREAM variants should undercut PRAC on average",
    )
