"""Table 4: revised tracker parameters under DREAM-R (analytic).

At T_RH = 2000: coupled PARA needs p = 1/100 and MINT W = 100; delayed
DRFM without ATM requires p ~ 1/85 and W = 97; with ATM the parameters
stay essentially unchanged (p ~ 1/99, W = 99).
"""

from __future__ import annotations

import math

from repro.core.security import revised_parameters
from repro.experiments.common import DEFAULT_SEED, ExperimentResult

#: Thresholds to tabulate (the paper shows 2K; we sweep for context).
THRESHOLDS = (1000, 2000, 4000)

PAPER_AT_2K = {
    "para_drfm": "p = 1/100",
    "para_dream_r": "p = 1/85",
    "para_with_atm": "p = 1/99",
    "mint_drfm": "W = 100",
    "mint_dream_r": "W = 97",
    "mint_with_atm": "W = 99",
}


def run(quick: bool = True, requests_per_core: int | None = None,
        seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Regenerate Table 4."""
    rows = []
    for t_rh in THRESHOLDS:
        params = revised_parameters(t_rh)
        rows.append({
            "t_rh": t_rh,
            "para_p_coupled": f"1/{math.floor(1 / params.para_p_coupled)}",
            "para_p_dream_r": f"1/{math.floor(1 / params.para_p_dream_r)}",
            "para_p_with_atm":
                f"1/{math.floor(1 / params.para_p_with_atm)}",
            "mint_w_coupled": params.mint_w_coupled,
            "mint_w_dream_r": params.mint_w_dream_r,
            "mint_w_with_atm": params.mint_w_with_atm,
        })
    return ExperimentResult(
        experiment="table4",
        title="Revised tracker parameters for DREAM-R (with/without ATM)",
        rows=rows,
        paper_reference=PAPER_AT_2K,
        notes="the exact-solve denominator differs from the paper by ~1 "
              "(the paper approximates e^3 ~ 20 in Appendix A)",
    )
