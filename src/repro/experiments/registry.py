"""Experiment registry: name -> runnable, for the CLI and the benches.

:func:`run_experiment` is the single dispatch point: the CLI, the
benchmark harness and tests all enter here, so a sweep executor
activated via :mod:`repro.exec.runtime` (worker pool + run cache) covers
every experiment an invocation touches.
"""

from __future__ import annotations

import inspect
from typing import Callable

from repro.experiments import (ablations, dos, fig5, fig9, fig10, fig11,
                               fig15, fig17, fig19, fig22, fig23,
                               motivation, table1, table3, table4, table5,
                               table6, table7)
from repro.experiments.common import ExperimentResult, RunOptions

ExperimentRunner = Callable[..., ExperimentResult]

#: Every reproducible table/figure, in paper order.
EXPERIMENTS: dict[str, ExperimentRunner] = {
    "table1": table1.run,
    "table3": table3.run,
    "fig5": fig5.run,
    "table4": table4.run,
    "table5": table5.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig15": fig15.run,
    "table6": table6.run,
    "fig17": fig17.run,
    "table7": table7.run,
    "fig19": fig19.run,
    "dos": dos.run,
    "fig22": fig22.run,
    "fig23": fig23.run,
}

#: Motivation studies (the Sections 1-2/8 narrative, made measurable).
MOTIVATION: dict[str, ExperimentRunner] = {
    "motivation-trr": motivation.run_trr_bypass,
    "motivation-prac-extrinsic": motivation.run_prac_extrinsic,
}

EXPERIMENTS.update(MOTIVATION)

#: Ablation studies (design-space knobs beyond the paper's figures).
ABLATIONS: dict[str, ExperimentRunner] = {
    "ablation-atm": ablations.run_atm,
    "ablation-vertical": ablations.run_vertical,
    "ablation-window-scaling": ablations.run_window_scaling,
    "ablation-rate-limit": ablations.run_rate_limit,
    "ablation-mlp": ablations.run_mlp,
    "ablation-page-policy": ablations.run_page_policy,
    "ablation-scheduler": ablations.run_scheduler,
}

EXPERIMENTS.update(ABLATIONS)


def get(name: str) -> ExperimentRunner:
    """Look up an experiment by name."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; available: "
                       f"{', '.join(EXPERIMENTS)}") from None


def names() -> list[str]:
    """All experiment names in paper order."""
    return list(EXPERIMENTS)


def run_experiment(name: str,
                   options: RunOptions | None = None) -> ExperimentResult:
    """Run one experiment through the registry.

    ``options`` carries every run parameter (see :class:`RunOptions`);
    ``None`` means all defaults.  ``options.requests_per_core``
    overrides the per-core request budget for runners that expose one
    (all simulation-driven experiments do); analytic experiments
    without the parameter ignore the override.

    The resilience knobs (``retries``/``timeout_s``) configure the
    ambient sweep executor when the caller activated one; with no
    ambient executor, a private executor carrying that policy — and the
    requested engine ``backend`` — is scoped around the run, so library
    callers get fault tolerance and batched dispatch without touching
    :mod:`repro.exec.runtime`.

    The pre-2.0 ``quick``/``seed``/``requests_per_core`` keyword
    surface was removed after its deprecation cycle; construct a
    :class:`RunOptions` instead.
    """
    if options is None:
        options = RunOptions()
    if not isinstance(options, RunOptions):
        raise TypeError(
            f"options must be RunOptions or None, got "
            f"{type(options).__name__} (the legacy quick/seed/"
            f"requests_per_core surface was removed in 2.0; pass "
            f"RunOptions(...) — see docs/api.md)")
    runner = get(name)
    kwargs: dict = {"quick": options.quick, "seed": options.seed}
    if options.requests_per_core is not None and \
            "requests_per_core" in inspect.signature(runner).parameters:
        kwargs["requests_per_core"] = options.requests_per_core
    if options.wants_resilience() or options.backend != "scalar":
        from repro.exec import runtime as exec_runtime
        if exec_runtime.active() is None:
            from repro.exec.executor import SweepExecutor
            from repro.exec.resilience import CellPolicy

            defaults = CellPolicy()
            policy = CellPolicy(
                timeout_s=options.timeout_s,
                retries=options.retries if options.retries is not None
                else defaults.retries)
            with SweepExecutor(policy=policy,
                               backend=options.backend) as executor, \
                    exec_runtime.activated(executor):
                return runner(**kwargs)
    return runner(**kwargs)
