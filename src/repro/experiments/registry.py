"""Experiment registry: name -> runnable, for the CLI and the benches.

:func:`run_experiment` is the single dispatch point: the CLI, the
benchmark harness and tests all enter here, so a sweep executor
activated via :mod:`repro.exec.runtime` (worker pool + run cache) covers
every experiment an invocation touches.
"""

from __future__ import annotations

import inspect
from typing import Callable

from repro.experiments import (ablations, dos, fig5, fig9, fig10, fig11,
                               fig15, fig17, fig19, fig22, fig23,
                               motivation, table1, table3, table4, table5,
                               table6, table7)
from repro.experiments.common import DEFAULT_SEED, ExperimentResult

ExperimentRunner = Callable[..., ExperimentResult]

#: Every reproducible table/figure, in paper order.
EXPERIMENTS: dict[str, ExperimentRunner] = {
    "table1": table1.run,
    "table3": table3.run,
    "fig5": fig5.run,
    "table4": table4.run,
    "table5": table5.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig15": fig15.run,
    "table6": table6.run,
    "fig17": fig17.run,
    "table7": table7.run,
    "fig19": fig19.run,
    "dos": dos.run,
    "fig22": fig22.run,
    "fig23": fig23.run,
}

#: Motivation studies (the Sections 1-2/8 narrative, made measurable).
MOTIVATION: dict[str, ExperimentRunner] = {
    "motivation-trr": motivation.run_trr_bypass,
    "motivation-prac-extrinsic": motivation.run_prac_extrinsic,
}

EXPERIMENTS.update(MOTIVATION)

#: Ablation studies (design-space knobs beyond the paper's figures).
ABLATIONS: dict[str, ExperimentRunner] = {
    "ablation-atm": ablations.run_atm,
    "ablation-vertical": ablations.run_vertical,
    "ablation-window-scaling": ablations.run_window_scaling,
    "ablation-rate-limit": ablations.run_rate_limit,
    "ablation-mlp": ablations.run_mlp,
    "ablation-page-policy": ablations.run_page_policy,
    "ablation-scheduler": ablations.run_scheduler,
}

EXPERIMENTS.update(ABLATIONS)


def get(name: str) -> ExperimentRunner:
    """Look up an experiment by name."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; available: "
                       f"{', '.join(EXPERIMENTS)}") from None


def names() -> list[str]:
    """All experiment names in paper order."""
    return list(EXPERIMENTS)


def run_experiment(name: str, quick: bool = True,
                   seed: int = DEFAULT_SEED,
                   requests_per_core: int | None = None
                   ) -> ExperimentResult:
    """Run one experiment through the registry.

    ``requests_per_core`` overrides the per-core request budget for
    runners that expose one (all simulation-driven experiments do);
    analytic experiments without the parameter ignore the override.
    """
    runner = get(name)
    kwargs: dict = {"quick": quick, "seed": seed}
    if requests_per_core is not None and \
            "requests_per_core" in inspect.signature(runner).parameters:
        kwargs["requests_per_core"] = requests_per_core
    return runner(**kwargs)
