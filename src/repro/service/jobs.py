"""Job scheduler: submit-and-stream sweep jobs over one shared executor.

A *job* is one ``run_experiment(name, options)`` invocation promoted to
an asynchronous unit of work with a stable identity and a four-state
lifecycle::

    queued -> running -> done
                      -> failed

The scheduler owns exactly one :class:`~repro.exec.SweepExecutor` and
``concurrency`` worker threads (default 1, ``repro serve
--job-concurrency N``).  Workers claim queued jobs in submission order;
with ``concurrency > 1`` up to N jobs run at once, their cells sharing
the executor's single process pool.  The executor splits that pool
fairly across the active jobs (each keeps roughly ``jobs/active``
cells outstanding — a deficit-style window rather than first-flooder
wins) and its lifetime memo (plus optional
:class:`~repro.exec.cache.RunCache`) is shared across *all* jobs.

That shared reuse layer is the service's cache-coalescing guarantee,
and it survives concurrency via the executor's in-flight deduplication:
two identical submissions perform the sweep's cell work once *even when
they race* — whichever job's scan loses the claim attaches to the
winner's in-flight cells and finishes with ``computed=0`` and
``memo_hits == cells`` (each hit also marked in ``dedup_hits``).  Raced,
not ordered.  Because every cell is deterministic and results merge in
fixed cell order, a job's result JSON is byte-identical to a local
``run_experiment`` call with the same options — cold, warm, serial or
concurrent.

Per-job knobs ride the :class:`~repro.experiments.common.RunOptions`
wire record: ``retries``/``timeout_s`` become the executor's
:class:`~repro.exec.resilience.CellPolicy` for that job, ``backend``
selects the engine backend (batched groups reuse the planner from
``experiments.common``).  The knobs bind through
:meth:`~repro.exec.SweepExecutor.scoped` — thread-local, so concurrent
jobs never see each other's policy — and the same scope yields the
job's **attributed counters**: exactly the cells/computed/memo work
this job generated, with no snapshot arithmetic against global totals
that neighbouring jobs are mutating.  ``resume`` is rejected at
submission — the service has no per-job checkpoint journal; its memo
and cache already provide the equivalent warm restart.

Every cell-level event the executor reports (submitted / computed /
memo or cache hit / resumed / retried / failed) is appended to the
job's ordered event log with a monotonically increasing ``seq``, which
is what the server's NDJSON stream — and the client's
reconnect-with-cursor — ride on.  Event logs are strictly per-job even
under concurrency: the progress sink is part of the job's scoped
binding, so a neighbour's cells can never bleed into this job's stream.

**Observability plane.**  Unless constructed with ``spans=False``, each
job runs under its own ambient :class:`~repro.obs.Telemetry` with span
tracing on: the finished job keeps its merged span document (served at
``GET /v1/jobs/<id>/spans`` for ``repro spans --url``), and the job's
deterministic simulated-time metrics fold into the scheduler-lifetime
:attr:`JobScheduler.registry`, which the server's ``/v1/metrics``
exposition renders.  Ambient telemetry is thread-local
(:mod:`repro.obs.runtime`), so concurrent jobs' planes stay disjoint.
Telemetry never perturbs results — job result JSON stays byte-identical
with the plane on or off (pinned by ``tests/test_service_obs.py``).
"""

from __future__ import annotations

import json
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field

from repro.exec import runtime as exec_runtime
from repro.exec.executor import SweepExecutor
from repro.exec.resilience import CellPolicy, SweepFailure
from repro.experiments import registry
from repro.experiments.common import RunOptions
from repro.obs import Telemetry
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")

#: Terminal states: the job record and its events are final.
TERMINAL_STATES = ("done", "failed")

#: Executor counters mirrored into each job record (the same counters
#: the executor mirrors into the obs metrics registry as ``exec.*``).
COUNTER_FIELDS = ("cells", "computed", "memo_hits", "dedup_hits",
                  "resumed", "retries", "timeouts", "failed", "batched",
                  "inline")


class UnknownJob(KeyError):
    """No job with the requested id."""


class BadSubmission(ValueError):
    """A submission the scheduler rejects (unknown experiment, invalid
    options, unsupported knob); the server maps this to HTTP 400."""


class SpansUnavailable(Exception):
    """Span capture is disabled on this scheduler (HTTP 404)."""


@dataclass
class Job:
    """One submitted experiment run (mutable; guarded by the scheduler
    lock)."""

    id: str
    experiment: str
    options: RunOptions
    state: str = "queued"
    submitted_unix: float = 0.0
    error: str | None = None
    result_json: str | None = None
    spans_json: str | None = None
    counters: dict = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)

    def record(self, queue_position: int | None = None) -> dict:
        """The job's public record (the ``GET /v1/jobs/<id>`` body).

        ``queue_position`` is the job's 0-based place in the start
        queue, supplied by the scheduler for queued jobs and ``None``
        once the job has started — under concurrency it is the only way
        to read "how far back am I" off a listing.
        """
        return {
            "job": self.id,
            "experiment": self.experiment,
            "state": self.state,
            "submitted_unix": round(self.submitted_unix, 6),
            "queue_position": queue_position,
            "options": self.options.to_dict(),
            "counters": dict(self.counters),
            "events": len(self.events),
            "error": self.error,
        }


class _JobProgress:
    """Adapter feeding one job's event log from the executor's progress
    hook (the same interface :class:`~repro.obs.progress.SweepProgress`
    implements)."""

    def __init__(self, scheduler: "JobScheduler", job: Job) -> None:
        self.scheduler = scheduler
        self.job = job

    def add_cells(self, count: int) -> None:
        self.scheduler._append_event(self.job, "cells", count=count)

    def record(self, kind: str, seconds: float | None = None) -> None:
        fields = {} if seconds is None else {"seconds": round(seconds, 6)}
        self.scheduler._append_event(self.job, kind, **fields)

    def finish(self) -> None:
        """Sweep end is implied by the job's terminal state event."""


class JobScheduler:
    """Concurrent job queue over one shared :class:`SweepExecutor`.

    Parameters
    ----------
    executor:
        The executor every job runs through.  Its memo (and cache, if
        configured) is the coalescing layer shared across jobs; each
        job binds its own ``policy``/``backend``/progress sink through
        the executor's thread-local :meth:`~SweepExecutor.scoped`
        scope.  Defaults to a serial cacheless executor.
    spans:
        Run each job under a per-job span-tracing telemetry (default).
        The finished job keeps its span document for the
        ``/v1/jobs/<id>/spans`` endpoint, and job metrics fold into
        :attr:`registry`.  ``False`` turns the whole per-job telemetry
        plane off (``repro serve --no-spans``).
    concurrency:
        Worker threads claiming queued jobs (default 1, which preserves
        the strict in-order single-worker behaviour exactly).  With
        ``N > 1``, up to N jobs run at once over the shared executor —
        fairness, coalescing and determinism are the executor's
        contract (see ``docs/service.md``, "Concurrency model").
    """

    def __init__(self, executor: SweepExecutor | None = None,
                 spans: bool = True, concurrency: int = 1) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.executor = executor if executor is not None \
            else SweepExecutor()
        self.spans_enabled = spans
        self.concurrency = concurrency
        #: Scheduler-lifetime metrics: every finished job's telemetry
        #: registry folds in here (simulated-time counters plus the
        #: ``exec.*`` mirrors), rendered by ``GET /v1/metrics``.
        self.registry = MetricsRegistry()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._queue: deque[Job] = deque()
        self._seq = 0
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker,
                             name=f"repro-service-worker-{index}",
                             daemon=True)
            for index in range(concurrency)]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers (after their current jobs) and the
        executor."""
        with self._wake:
            if self._closed:
                return
            self._closed = True
            self._wake.notify_all()
        for thread in self._threads:
            thread.join()
        self.executor.close()

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission API (server-facing)
    # ------------------------------------------------------------------
    def submit(self, experiment: str, options: RunOptions | None = None) \
            -> dict:
        """Queue one job; returns its (queued) record.

        Raises :class:`BadSubmission` for unknown experiments or options
        the service cannot honour.
        """
        if options is None:
            options = RunOptions()
        if experiment not in registry.EXPERIMENTS:
            raise BadSubmission(
                f"unknown experiment {experiment!r}; "
                f"see GET /v1/experiments")
        if options.resume:
            raise BadSubmission(
                "resume is not a service-side option: the shared "
                "run cache already serves completed cells warm")
        with self._wake:
            if self._closed:
                raise BadSubmission("service is shutting down")
            self._seq += 1
            job = Job(id=f"j{self._seq}", experiment=experiment,
                      options=options, submitted_unix=time.time())
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._queue.append(job)
            self._append_event_locked(job, "state", state="queued")
            self._wake.notify_all()
            return job.record(
                queue_position=self._queue_position_locked(job))

    def get(self, job_id: str) -> dict:
        """The job's current record; raises :class:`UnknownJob`."""
        with self._lock:
            job = self._job(job_id)
            return job.record(
                queue_position=self._queue_position_locked(job))

    def list(self) -> list[dict]:
        """Records of every job, sorted by submission time (ties break
        on submission sequence), queued jobs carrying their current
        queue position."""
        with self._lock:
            ordered = sorted(
                enumerate(self._order),
                key=lambda pair: (self._jobs[pair[1]].submitted_unix,
                                  pair[0]))
            return [self._jobs[job_id].record(
                        queue_position=self._queue_position_locked(
                            self._jobs[job_id]))
                    for _, job_id in ordered]

    def _queue_position_locked(self, job: Job) -> int | None:
        """0-based start-queue position, or ``None`` once started."""
        if job.state != "queued":
            return None
        for position, queued in enumerate(self._queue):
            if queued is job:
                return position
        return None

    def events_since(self, job_id: str, after: int = -1) \
            -> tuple[list[dict], bool]:
        """Events with ``seq > after`` plus whether the job is terminal.

        The event list is append-only, so polling with the last seen
        ``seq`` as the cursor never misses or duplicates an event —
        which is exactly the contract the streaming endpoint and the
        reconnecting client rely on.
        """
        with self._lock:
            job = self._job(job_id)
            events = [event for event in job.events
                      if event["seq"] > after]
            return events, job.state in TERMINAL_STATES

    def result_text(self, job_id: str) -> str:
        """The finished job's result JSON, byte-identical to a local
        ``run_experiment(...).to_json()``.

        Raises :class:`UnknownJob` for unknown ids, :class:`JobNotDone`
        (HTTP 409) while the job is still queued/running, and
        :class:`JobFailedError` (HTTP 410) for terminally failed jobs.
        """
        with self._lock:
            job = self._job(job_id)
            if job.state == "failed":
                raise JobFailedError(job.error or "job failed")
            if job.result_json is None:
                raise JobNotDone(job.state)
            return job.result_json

    def spans_text(self, job_id: str) -> str:
        """The finished job's span document as JSON text.

        Raises :class:`SpansUnavailable` when the scheduler runs with
        ``spans=False``, :class:`UnknownJob` for unknown ids,
        :class:`JobNotDone` while queued/running, and
        :class:`JobFailedError` for failed jobs — mapped by the server
        to 404/404/409/410 respectively.
        """
        if not self.spans_enabled:
            raise SpansUnavailable(
                "span capture is disabled on this service "
                "(started with --no-spans)")
        with self._lock:
            job = self._job(job_id)
            if job.state == "failed":
                raise JobFailedError(job.error or "job failed")
            if job.spans_json is None:
                raise JobNotDone(job.state)
            return job.spans_json

    def _job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJob(job_id) from None

    # ------------------------------------------------------------------
    # Observability accessors (the server's metrics/readiness surface)
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Point-in-time scheduler load figures for exposition and
        readiness: total jobs ever submitted, per-state counts, the
        queue depth (jobs submitted but not yet started), the worker
        head-count, and the executor's in-flight cell table size."""
        with self._lock:
            states = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            stats = {"jobs_total": len(self._jobs),
                     "states": states,
                     "queue_depth": len(self._queue),
                     "concurrency": self.concurrency,
                     "workers_alive": sum(
                         1 for thread in self._threads
                         if thread.is_alive())}
        stats["inflight_cells"] = self.executor.inflight_cells()
        return stats

    def queue_depth(self) -> int:
        """Jobs queued but not yet running."""
        with self._lock:
            return len(self._queue)

    def worker_alive(self) -> bool:
        """Whether at least one worker thread can still run jobs."""
        return not self._closed and \
            any(thread.is_alive() for thread in self._threads)

    def collect_metrics(self, exposition, prefix: str = "repro") -> None:
        """Render the merged job registry into an
        :class:`~repro.obs.exporter.Exposition` (under the scheduler
        lock, so a concurrent job-completion fold cannot tear the
        iteration)."""
        from repro.obs.exporter import collect_registry

        with self._lock:
            collect_registry(exposition, self.registry, prefix=prefix)

    def _fold_registry_locked(self, source: MetricsRegistry) -> None:
        """Accumulate one job's telemetry registry into the scheduler's
        lifetime registry (counters add, gauges last-write, histograms
        merge bucket-wise)."""
        for name in source.names():
            instrument = source.get(name)
            if isinstance(instrument, Histogram):
                merged = self.registry.histogram(name, instrument.bounds)
                if merged.bounds == instrument.bounds:
                    for index, count in enumerate(instrument.counts):
                        merged.counts[index] += count
                merged.overflow += instrument.overflow
                merged.count += instrument.count
                merged.total += instrument.total
            elif isinstance(instrument, Counter):
                self.registry.counter(name).inc(instrument.value)
            elif isinstance(instrument, Gauge):
                self.registry.gauge(name).set(instrument.value)

    # ------------------------------------------------------------------
    # Event log
    # ------------------------------------------------------------------
    def _append_event(self, job: Job, kind: str, **fields) -> None:
        with self._lock:
            self._append_event_locked(job, kind, **fields)

    def _append_event_locked(self, job: Job, kind: str, **fields) -> None:
        event = {"seq": len(job.events), "job": job.id, "kind": kind}
        event.update(fields)
        job.events.append(event)

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._wake:
                while not self._queue and not self._closed:
                    self._wake.wait()
                if self._closed and not self._queue:
                    return
                job = self._queue.popleft()
                job.state = "running"
                self._append_event_locked(job, "state", state="running")
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        executor = self.executor
        defaults = CellPolicy()
        policy = CellPolicy(
            timeout_s=job.options.timeout_s,
            retries=job.options.retries
            if job.options.retries is not None else defaults.retries)
        telemetry = Telemetry(spans=True) if self.spans_enabled else None
        state, error, result_json = "done", None, None
        spans_json = None
        with executor.scoped(policy=policy,
                             backend=job.options.backend,
                             progress=_JobProgress(self, job)) as scope:
            try:
                with exec_runtime.activated(executor), \
                        obs_runtime.activated(telemetry):
                    result = registry.run_experiment(job.experiment,
                                                     job.options)
                result_json = result.to_json()
                if telemetry is not None:
                    spans_json = json.dumps(telemetry.spans_doc(),
                                            sort_keys=True)
            except SweepFailure as failure:
                state, error = "failed", str(failure)
            except Exception as exc:  # noqa: BLE001 — job isolation
                state = "failed"
                error = f"{type(exc).__name__}: {exc}"
                traceback.print_exc()
        with self._lock:
            job.counters = {name: getattr(scope.stats, name)
                            for name in COUNTER_FIELDS}
            job.state = state
            job.error = error
            job.result_json = result_json
            job.spans_json = spans_json
            if telemetry is not None:
                self._fold_registry_locked(telemetry.registry)
            fields = {"state": state}
            if error is not None:
                fields["error"] = error
            self._append_event_locked(job, "state", **fields)


class JobNotDone(Exception):
    """The job exists but has no result yet (HTTP 409); the message is
    the job's current state."""


class JobFailedError(Exception):
    """The job failed terminally (HTTP 410); the message is the job's
    error."""
