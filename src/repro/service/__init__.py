"""Sweep service: an async job API over the execution fabric.

The :mod:`repro.exec` layer already has everything a multi-tenant
sweep system needs — content-addressed caching, picklable cell specs,
retries/timeouts, per-cell telemetry — except a transport.  This
package is that transport:

* :class:`~repro.service.jobs.JobScheduler` — submit-and-stream job
  queue over one shared :class:`~repro.exec.SweepExecutor` (the shared
  memo/cache is what coalesces identical concurrent submissions onto a
  single execution of the cell work);
* :class:`~repro.service.server.SweepService` — stdlib-asyncio HTTP
  server exposing ``POST /v1/jobs``, job records, an NDJSON event
  stream and the deterministic result document;
* :class:`~repro.service.client.SweepClient` — typed client with
  deterministic transport retry/backoff and exact stream reconnection.

``repro serve`` / ``repro submit`` / ``repro jobs`` are the CLI front
ends; ``docs/service.md`` documents the endpoints, the job lifecycle
and the determinism guarantees.
"""

from repro.service.client import (JobFailed, RETRY_BACKOFF_S,
                                  ServiceError, SweepClient)
from repro.service.jobs import (BadSubmission, Job, JobScheduler,
                                UnknownJob)
from repro.service.server import ServiceThread, SweepService

__all__ = [
    "BadSubmission",
    "Job",
    "JobFailed",
    "JobScheduler",
    "RETRY_BACKOFF_S",
    "ServiceError",
    "ServiceThread",
    "SweepClient",
    "SweepService",
    "UnknownJob",
]
