"""Asyncio HTTP server exposing the sweep service's v1 job API.

Hand-rolled on ``asyncio.start_server`` — no third-party dependency,
no ``http.server`` thread-per-connection machinery.  The endpoint
surface (all request/response bodies are JSON unless noted):

==========================================  ===========================
``GET  /v1/experiments``                    registered experiment names
``POST /v1/jobs``                           submit: ``{"experiment":
                                            name, "options": {...}}``
                                            → the queued job record
``GET  /v1/jobs``                           ``{"jobs": [records...]}``
``GET  /v1/jobs/<id>``                      one job record (state
                                            machine + exec counters)
``GET  /v1/jobs/<id>/events[?after=N]``     NDJSON stream of the job's
                                            events with ``seq > N``,
                                            live until the terminal
                                            ``state`` event
``GET  /v1/jobs/<id>/result``               the deterministic merged
                                            result JSON, byte-identical
                                            to local ``run_experiment``
``GET  /v1/jobs/<id>/spans``                the finished job's span
                                            document (``repro spans
                                            --url`` input)
``GET  /v1/healthz``                        liveness: 200 while the
                                            process serves requests
``GET  /v1/readyz``                         readiness: 200 when the
                                            worker is alive, the cache
                                            dir writable and the queue
                                            below the high-water mark;
                                            503 (+ ``Retry-After``)
                                            otherwise
``GET  /v1/metrics``                        Prometheus text exposition
                                            of scheduler/executor/
                                            cache/resource metrics
==========================================  ===========================

Error taxonomy: 400 bad submission (unknown experiment, invalid
options), 404 unknown job or path, 409 result requested before the job
is done, 410 result of a failed job, 413 oversized body, 503 submission
while not ready (the ``Retry-After`` header and ``retry_after_s`` body
field say when to retry) — every error body is ``{"error": message}``.

The compute itself happens on the scheduler's worker threads (up to
``--job-concurrency`` jobs at once); the event loop only parses
requests and serialises records, so status and stream requests stay
responsive while jobs simulate.  Because the loop is single-threaded,
the readiness check inside a submission and the enqueue are atomic with
respect to other submissions — concurrent clients cannot overshoot the
queue limit through the API.  Event streaming polls
the scheduler's append-only per-job event log (cursor = last ``seq``),
which is also what makes client reconnects exact: the ``after`` query
parameter resumes the stream without loss or duplication.

With ``access_log`` configured every request additionally appends one
schema-versioned JSONL record (method, path, status, duration_us, job
id, wire bytes) — summarised by ``repro stats --access-log``.  The
exposition/health/log surfaces are wall-clock-bearing and explicitly
outside the byte-identity determinism contract.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time

from repro.experiments import registry
from repro.experiments.common import RunOptions
from repro.service.jobs import (BadSubmission, JobFailedError, JobNotDone,
                                JobScheduler, SpansUnavailable, UnknownJob)

#: Largest accepted request body (a submission is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20

#: Seconds between event-log polls while streaming a live job.
STREAM_POLL_S = 0.02

#: Default readiness high-water mark: queued-but-not-started jobs at or
#: beyond this depth flip ``/v1/readyz`` (and submissions) to 503.
DEFAULT_QUEUE_LIMIT = 64

#: ``Retry-After`` seconds advertised with a 503.
RETRY_AFTER_S = 1

#: Version stamped into every access-log record; bump on breaking
#: schema changes.
ACCESS_LOG_SCHEMA_VERSION = 1

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict", 410: "Gone",
            413: "Payload Too Large", 500: "Internal Server Error",
            503: "Service Unavailable"}


class AccessLog:
    """Append-only JSONL request log.

    One record per served request::

        {"v": 1, "kind": "access", "ts": 1754650000.123,
         "method": "GET", "path": "/v1/jobs/j1", "status": 200,
         "duration_us": 812, "job": "j1", "bytes": 631}

    Each record is a single ``write()`` of one complete line on an
    ``O_APPEND`` handle, flushed immediately — so concurrent writers
    cannot interleave partial lines and a killed service never leaves a
    torn record (the JSONL analogue of the run cache's atomic-replace
    discipline).  ``repro stats --access-log FILE`` summarises the file
    through the shared artifact taxonomy.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.written = 0
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")

    def record(self, method: str, path: str, status: int,
               duration_us: int, job: str | None,
               response_bytes: int) -> None:
        """Append one access record."""
        line = json.dumps(
            {"v": ACCESS_LOG_SCHEMA_VERSION, "kind": "access",
             "ts": round(time.time(), 6), "method": method,
             "path": path, "status": status,
             "duration_us": duration_us, "job": job,
             "bytes": response_bytes},
            sort_keys=True) + "\n"
        with self._lock:
            self._handle.write(line)
            self._handle.flush()
            self.written += 1

    def close(self) -> None:
        with self._lock:
            self._handle.close()


class _LoggedWriter:
    """StreamWriter proxy accounting status/bytes/job for one request."""

    __slots__ = ("_writer", "status", "sent", "job")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self.status: int | None = None
        self.sent = 0
        self.job: str | None = None

    def write(self, data: bytes) -> None:
        self.sent += len(data)
        self._writer.write(data)

    async def drain(self) -> None:
        await self._writer.drain()

    def close(self) -> None:
        self._writer.close()

    async def wait_closed(self) -> None:
        await self._writer.wait_closed()


class SweepService:
    """The HTTP front half: routes requests onto a :class:`JobScheduler`.

    ``port=0`` binds an ephemeral port; the bound port is available as
    :attr:`port` after :meth:`start`.
    """

    def __init__(self, scheduler: JobScheduler,
                 host: str = "127.0.0.1", port: int = 0,
                 access_log: AccessLog | None = None,
                 queue_limit: int | None = None,
                 resources=None) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.access_log = access_log
        self.queue_limit = DEFAULT_QUEUE_LIMIT if queue_limit is None \
            else queue_limit
        if resources is None:
            from repro.obs.resource import ResourceSampler
            resources = ResourceSampler(scheduler.registry)
        self.resources = resources
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      raw_writer: asyncio.StreamWriter) -> None:
        writer = _LoggedWriter(raw_writer)
        request = None
        started = time.perf_counter()
        try:
            request = await self._read_request(reader, writer)
            if request is not None:
                method, path, query, body = request
                await self._route(writer, method, path, query, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except Exception as exc:  # noqa: BLE001 — keep the server up
            try:
                self._respond_json(writer, 500,
                                   {"error": f"{type(exc).__name__}: "
                                             f"{exc}"})
            except ConnectionError:
                pass
        finally:
            if self.access_log is not None and request is not None:
                duration_us = int((time.perf_counter() - started) * 1e6)
                self.access_log.record(
                    request[0], request[1], writer.status or 0,
                    duration_us, writer.job, writer.sent)
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader, writer):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            self._respond_json(writer, 400,
                               {"error": "malformed request line"})
            return None
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            self._respond_json(writer, 413, {"error": "body too large"})
            return None
        body = await reader.readexactly(length) if length else b""
        path, _, raw_query = target.partition("?")
        query: dict[str, str] = {}
        for pair in raw_query.split("&"):
            if pair:
                key, _, value = pair.partition("=")
                query[key] = value
        return method.upper(), path, query, body

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, writer, method: str, path: str,
                     query: dict[str, str], body: bytes) -> None:
        parts = [part for part in path.split("/") if part]
        if parts == ["v1", "experiments"] and method == "GET":
            self._respond_json(writer, 200,
                               {"experiments": registry.names()})
            return
        if parts == ["v1", "healthz"] and method == "GET":
            self._respond_json(writer, 200, {"ok": True})
            return
        if parts == ["v1", "readyz"] and method == "GET":
            ready, checks = self._readiness()
            if ready:
                self._respond_json(writer, 200,
                                   {"ok": True, "checks": checks})
            else:
                self._respond_unready(writer, checks)
            return
        if parts == ["v1", "metrics"] and method == "GET":
            from repro.obs.exporter import EXPOSITION_CONTENT_TYPE
            self._respond(writer, 200,
                          self._metrics_text().encode("utf-8"),
                          EXPOSITION_CONTENT_TYPE)
            return
        if parts == ["v1", "jobs"]:
            if method == "POST":
                self._submit(writer, body)
            elif method == "GET":
                self._respond_json(writer, 200,
                                   {"jobs": self.scheduler.list()})
            else:
                self._respond_json(writer, 405,
                                   {"error": f"{method} not allowed"})
            return
        if len(parts) in (3, 4) and parts[:2] == ["v1", "jobs"] \
                and method == "GET":
            job_id = parts[2]
            tail = parts[3] if len(parts) == 4 else None
            writer.job = job_id
            try:
                if tail is None:
                    self._respond_json(writer, 200,
                                       self.scheduler.get(job_id))
                elif tail == "events":
                    await self._stream_events(writer, job_id, query)
                elif tail == "result":
                    text = self.scheduler.result_text(job_id)
                    self._respond(writer, 200, text.encode("utf-8"),
                                  "application/json")
                elif tail == "spans":
                    text = self.scheduler.spans_text(job_id)
                    self._respond(writer, 200, text.encode("utf-8"),
                                  "application/json")
                else:
                    self._respond_json(writer, 404,
                                       {"error": f"unknown endpoint "
                                                 f"{path!r}"})
            except UnknownJob:
                self._respond_json(writer, 404,
                                   {"error": f"unknown job {job_id!r}"})
            except SpansUnavailable as disabled:
                self._respond_json(writer, 404, {"error": str(disabled)})
            except JobNotDone as pending:
                self._respond_json(writer, 409,
                                   {"error": f"job {job_id} has no "
                                             f"result yet",
                                    "state": str(pending)})
            except JobFailedError as failure:
                self._respond_json(writer, 410,
                                   {"error": str(failure),
                                    "state": "failed"})
            return
        self._respond_json(writer, 404,
                           {"error": f"unknown endpoint {path!r}"})

    def _submit(self, writer, body: bytes) -> None:
        ready, checks = self._readiness()
        if not ready:
            self._respond_unready(writer, checks)
            return
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(payload, dict):
                raise ValueError("submission body must be a JSON object")
            experiment = payload.get("experiment")
            if not isinstance(experiment, str):
                raise ValueError("submission needs an 'experiment' name")
            options = RunOptions.from_dict(payload.get("options", {}))
            record = self.scheduler.submit(experiment, options)
        except (ValueError, BadSubmission) as error:
            self._respond_json(writer, 400, {"error": str(error)})
            return
        writer.job = record.get("job")
        self._respond_json(writer, 200, record)

    # ------------------------------------------------------------------
    # Observability surfaces
    # ------------------------------------------------------------------
    def _readiness(self) -> tuple[bool, dict]:
        """Evaluate the readiness checks (worker, cache dir, queue)."""
        checks = {
            "worker_alive": self.scheduler.worker_alive(),
            "cache_writable": self._cache_writable(),
            "queue_below_limit":
                self.scheduler.queue_depth() < self.queue_limit,
        }
        return all(checks.values()), checks

    def _cache_writable(self) -> bool:
        cache = getattr(self.scheduler.executor, "cache", None)
        if cache is None:
            return True  # nothing to write; the check is vacuous
        path = cache.root
        # The cache dir is created lazily on first store — walk up to
        # the nearest existing ancestor and ask whether we could write.
        while not path.exists():
            parent = path.parent
            if parent == path:
                break
            path = parent
        return os.access(path, os.W_OK)

    def _respond_unready(self, writer, checks: dict) -> None:
        failed = sorted(name for name, ok in checks.items() if not ok)
        self._respond_json(
            writer, 503,
            {"error": "service not ready: "
                      + (", ".join(failed) or "unknown"),
             "checks": checks, "retry_after_s": RETRY_AFTER_S},
            extra_headers={"Retry-After": str(RETRY_AFTER_S)})

    def _metrics_text(self) -> str:
        """Render the full Prometheus exposition document."""
        from repro.obs.exporter import Exposition

        expo = Exposition()
        stats = self.scheduler.stats()
        expo.counter("repro_jobs", stats["jobs_total"],
                     help_text="Jobs submitted over the scheduler "
                               "lifetime.")
        for state, count in sorted(stats["states"].items()):
            expo.gauge("repro_jobs_state", count,
                       labels={"state": state},
                       help_text="Jobs currently in each lifecycle "
                                 "state.")
        expo.gauge("repro_queue_depth", stats["queue_depth"],
                   help_text="Jobs queued but not yet started.")
        expo.gauge("repro_scheduler_worker_up",
                   int(self.scheduler.worker_alive()),
                   help_text="1 while at least one scheduler worker "
                             "thread is alive.")
        expo.gauge("repro_scheduler_concurrency",
                   stats.get("concurrency", 1),
                   help_text="Configured job worker threads "
                             "(--job-concurrency).")
        expo.gauge("repro_scheduler_workers_alive",
                   stats.get("workers_alive",
                             int(self.scheduler.worker_alive())),
                   help_text="Job worker threads currently alive.")
        expo.gauge("repro_scheduler_inflight_cells",
                   stats.get("inflight_cells", 0),
                   help_text="Unique cell fingerprints being computed "
                             "right now across all running jobs.")
        executor = self.scheduler.executor
        exec_stats = getattr(executor, "stats", None)
        if exec_stats is not None:
            for field in ("cells", "computed", "inline", "batched",
                          "memo_hits", "dedup_hits", "resumed",
                          "retries", "timeouts", "failed", "fallbacks",
                          "engine_events"):
                expo.counter(f"repro_executor_{field}",
                             getattr(exec_stats, field),
                             help_text=f"Executor lifetime "
                                       f"{field.replace('_', ' ')}.")
            expo.counter("repro_executor_engine_seconds",
                         exec_stats.engine_seconds,
                         help_text="Seconds spent inside engine "
                                   "simulation calls.")
        cache = getattr(executor, "cache", None)
        if cache is not None:
            for field in ("hits", "misses", "stores", "corrupt"):
                expo.counter(f"repro_cache_{field}",
                             getattr(cache.stats, field),
                             help_text=f"Run-cache {field} since "
                                       f"startup.")
        if self.resources is not None:
            self.resources.sample()
        self.scheduler.collect_metrics(expo)
        return expo.render()

    async def _stream_events(self, writer, job_id: str,
                             query: dict[str, str]) -> None:
        try:
            after = int(query.get("after", "-1"))
        except ValueError:
            after = -1
        # Existence check before committing to a streaming response.
        events, terminal = self.scheduler.events_since(job_id, after)
        head = (f"HTTP/1.1 200 OK\r\n"
                f"Content-Type: application/x-ndjson\r\n"
                f"Connection: close\r\n\r\n")
        writer.status = 200
        writer.write(head.encode("latin-1"))
        while True:
            for event in events:
                writer.write(json.dumps(event, sort_keys=True)
                             .encode("utf-8") + b"\n")
                after = event["seq"]
            await writer.drain()
            if terminal and not events:
                return
            if not terminal:
                await asyncio.sleep(STREAM_POLL_S)
            events, terminal = self.scheduler.events_since(job_id, after)

    # ------------------------------------------------------------------
    # Response helpers
    # ------------------------------------------------------------------
    def _respond(self, writer, status: int, payload: bytes,
                 content_type: str,
                 extra_headers: dict[str, str] | None = None) -> None:
        reason = _REASONS.get(status, "")
        extras = "".join(f"{name}: {value}\r\n"
                         for name, value in (extra_headers or {}).items())
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"{extras}"
                f"Connection: close\r\n\r\n")
        writer.status = status
        writer.write(head.encode("latin-1") + payload)

    def _respond_json(self, writer, status: int, payload: dict,
                      extra_headers: dict[str, str] | None = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n") \
            .encode("utf-8")
        self._respond(writer, status, body, "application/json",
                      extra_headers)


class ServiceThread:
    """An in-process service on a background thread (tests, embedding).

    Context-managing a :class:`ServiceThread` starts the asyncio loop
    on a daemon thread, binds the server, and exposes ``host``/``port``/
    ``url``; exiting stops the server, the loop, and the scheduler.
    """

    def __init__(self, scheduler: JobScheduler,
                 host: str = "127.0.0.1", port: int = 0,
                 **service_kwargs) -> None:
        self.scheduler = scheduler
        self.service = SweepService(scheduler, host=host, port=port,
                                    **service_kwargs)
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._main,
                                        name="repro-service-http",
                                        daemon=True)

    @property
    def host(self) -> str:
        return self.service.host

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def url(self) -> str:
        return self.service.url

    def __enter__(self) -> "ServiceThread":
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join()
        self.scheduler.close()
        if self.service.access_log is not None:
            self.service.access_log.close()

    def _main(self) -> None:
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.service.start()
        except BaseException as error:  # noqa: BLE001 — surface to caller
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self.service.stop()
