"""Asyncio HTTP server exposing the sweep service's v1 job API.

Hand-rolled on ``asyncio.start_server`` — no third-party dependency,
no ``http.server`` thread-per-connection machinery.  The endpoint
surface (all request/response bodies are JSON unless noted):

==========================================  ===========================
``GET  /v1/experiments``                    registered experiment names
``POST /v1/jobs``                           submit: ``{"experiment":
                                            name, "options": {...}}``
                                            → the queued job record
``GET  /v1/jobs``                           ``{"jobs": [records...]}``
``GET  /v1/jobs/<id>``                      one job record (state
                                            machine + exec counters)
``GET  /v1/jobs/<id>/events[?after=N]``     NDJSON stream of the job's
                                            events with ``seq > N``,
                                            live until the terminal
                                            ``state`` event
``GET  /v1/jobs/<id>/result``               the deterministic merged
                                            result JSON, byte-identical
                                            to local ``run_experiment``
==========================================  ===========================

Error taxonomy: 400 bad submission (unknown experiment, invalid
options), 404 unknown job or path, 409 result requested before the job
is done, 410 result of a failed job, 413 oversized body — every error
body is ``{"error": message}``.

The compute itself happens on the scheduler's worker thread; the event
loop only parses requests and serialises records, so status and stream
requests stay responsive while a job simulates.  Event streaming polls
the scheduler's append-only per-job event log (cursor = last ``seq``),
which is also what makes client reconnects exact: the ``after`` query
parameter resumes the stream without loss or duplication.
"""

from __future__ import annotations

import asyncio
import json
import threading

from repro.experiments import registry
from repro.experiments.common import RunOptions
from repro.service.jobs import (BadSubmission, JobFailedError, JobNotDone,
                                JobScheduler, UnknownJob)

#: Largest accepted request body (a submission is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20

#: Seconds between event-log polls while streaming a live job.
STREAM_POLL_S = 0.02

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict", 410: "Gone",
            413: "Payload Too Large", 500: "Internal Server Error"}


class SweepService:
    """The HTTP front half: routes requests onto a :class:`JobScheduler`.

    ``port=0`` binds an ephemeral port; the bound port is available as
    :attr:`port` after :meth:`start`.
    """

    def __init__(self, scheduler: JobScheduler,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader, writer)
            if request is not None:
                method, path, query, body = request
                await self._route(writer, method, path, query, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except Exception as exc:  # noqa: BLE001 — keep the server up
            try:
                self._respond_json(writer, 500,
                                   {"error": f"{type(exc).__name__}: "
                                             f"{exc}"})
            except ConnectionError:
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader, writer):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            self._respond_json(writer, 400,
                               {"error": "malformed request line"})
            return None
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            self._respond_json(writer, 413, {"error": "body too large"})
            return None
        body = await reader.readexactly(length) if length else b""
        path, _, raw_query = target.partition("?")
        query: dict[str, str] = {}
        for pair in raw_query.split("&"):
            if pair:
                key, _, value = pair.partition("=")
                query[key] = value
        return method.upper(), path, query, body

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, writer, method: str, path: str,
                     query: dict[str, str], body: bytes) -> None:
        parts = [part for part in path.split("/") if part]
        if parts == ["v1", "experiments"] and method == "GET":
            self._respond_json(writer, 200,
                               {"experiments": registry.names()})
            return
        if parts == ["v1", "jobs"]:
            if method == "POST":
                self._submit(writer, body)
            elif method == "GET":
                self._respond_json(writer, 200,
                                   {"jobs": self.scheduler.list()})
            else:
                self._respond_json(writer, 405,
                                   {"error": f"{method} not allowed"})
            return
        if len(parts) in (3, 4) and parts[:2] == ["v1", "jobs"] \
                and method == "GET":
            job_id = parts[2]
            tail = parts[3] if len(parts) == 4 else None
            try:
                if tail is None:
                    self._respond_json(writer, 200,
                                       self.scheduler.get(job_id))
                elif tail == "events":
                    await self._stream_events(writer, job_id, query)
                elif tail == "result":
                    text = self.scheduler.result_text(job_id)
                    self._respond(writer, 200, text.encode("utf-8"),
                                  "application/json")
                else:
                    self._respond_json(writer, 404,
                                       {"error": f"unknown endpoint "
                                                 f"{path!r}"})
            except UnknownJob:
                self._respond_json(writer, 404,
                                   {"error": f"unknown job {job_id!r}"})
            except JobNotDone as pending:
                self._respond_json(writer, 409,
                                   {"error": f"job {job_id} has no "
                                             f"result yet",
                                    "state": str(pending)})
            except JobFailedError as failure:
                self._respond_json(writer, 410,
                                   {"error": str(failure),
                                    "state": "failed"})
            return
        self._respond_json(writer, 404,
                           {"error": f"unknown endpoint {path!r}"})

    def _submit(self, writer, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(payload, dict):
                raise ValueError("submission body must be a JSON object")
            experiment = payload.get("experiment")
            if not isinstance(experiment, str):
                raise ValueError("submission needs an 'experiment' name")
            options = RunOptions.from_dict(payload.get("options", {}))
            record = self.scheduler.submit(experiment, options)
        except (ValueError, BadSubmission) as error:
            self._respond_json(writer, 400, {"error": str(error)})
            return
        self._respond_json(writer, 200, record)

    async def _stream_events(self, writer, job_id: str,
                             query: dict[str, str]) -> None:
        try:
            after = int(query.get("after", "-1"))
        except ValueError:
            after = -1
        # Existence check before committing to a streaming response.
        events, terminal = self.scheduler.events_since(job_id, after)
        head = (f"HTTP/1.1 200 OK\r\n"
                f"Content-Type: application/x-ndjson\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1"))
        while True:
            for event in events:
                writer.write(json.dumps(event, sort_keys=True)
                             .encode("utf-8") + b"\n")
                after = event["seq"]
            await writer.drain()
            if terminal and not events:
                return
            if not terminal:
                await asyncio.sleep(STREAM_POLL_S)
            events, terminal = self.scheduler.events_since(job_id, after)

    # ------------------------------------------------------------------
    # Response helpers
    # ------------------------------------------------------------------
    def _respond(self, writer, status: int, payload: bytes,
                 content_type: str) -> None:
        reason = _REASONS.get(status, "")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1") + payload)

    def _respond_json(self, writer, status: int, payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n") \
            .encode("utf-8")
        self._respond(writer, status, body, "application/json")


class ServiceThread:
    """An in-process service on a background thread (tests, embedding).

    Context-managing a :class:`ServiceThread` starts the asyncio loop
    on a daemon thread, binds the server, and exposes ``host``/``port``/
    ``url``; exiting stops the server, the loop, and the scheduler.
    """

    def __init__(self, scheduler: JobScheduler,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.scheduler = scheduler
        self.service = SweepService(scheduler, host=host, port=port)
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._main,
                                        name="repro-service-http",
                                        daemon=True)

    @property
    def host(self) -> str:
        return self.service.host

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def url(self) -> str:
        return self.service.url

    def __enter__(self) -> "ServiceThread":
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join()
        self.scheduler.close()

    def _main(self) -> None:
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.service.start()
        except BaseException as error:  # noqa: BLE001 — surface to caller
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self.service.stop()
