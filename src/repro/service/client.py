"""Typed client for the sweep service: submit / wait / stream / result.

:class:`SweepClient` speaks the v1 job API over stdlib ``http.client``
with a **deterministic** retry/backoff discipline on transport errors:

* Only transport-level failures are retried — refused/reset
  connections, a server that closed before answering, a torn read.
  HTTP-level errors (400/404/409/410/...) are *protocol* answers and
  raise immediately.
* The backoff schedule is a fixed tuple (:data:`RETRY_BACKOFF_S`), not
  wall-clock- or random-jittered: attempt *n* always sleeps
  ``RETRY_BACKOFF_S[n]``.  Tests inject a recording ``sleep`` and
  assert the schedule verbatim.
* The schedule resets whenever an attempt makes progress (a response
  arrives; a streamed event is received), so long-lived streams get the
  full budget for every interruption, while a genuinely dead service
  exhausts it and raises :class:`ServiceError`.

Streaming reconnects are exact: every event carries a monotonically
increasing ``seq``, and :meth:`SweepClient.stream` resumes a dropped
stream with ``?after=<last seq>`` — no event is lost or duplicated, so
a mid-stream disconnect is invisible to the consumer, and
:meth:`SweepClient.result` after any number of reconnects returns the
byte-identical result JSON.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlsplit

from repro.experiments.common import RunOptions

#: Fixed transport-retry backoff schedule in seconds; attempt ``n``
#: sleeps ``RETRY_BACKOFF_S[n]`` before reconnecting.  Exhausting the
#: schedule raises :class:`ServiceError`.
RETRY_BACKOFF_S = (0.05, 0.1, 0.2, 0.4, 0.8)

#: Default per-request socket timeout.
DEFAULT_TIMEOUT_S = 60.0

#: Default poll cadence for :meth:`SweepClient.wait`.
DEFAULT_POLL_S = 0.05

#: Errors that mean "the transport failed", hence retryable.
TRANSPORT_ERRORS = (OSError, http.client.HTTPException)


class ServiceError(Exception):
    """The service is unreachable (transport retries exhausted) or
    answered with an HTTP error status.

    A 503 (service not ready) additionally carries ``retry_after_s`` —
    taken from the ``Retry-After`` header or the body's
    ``retry_after_s`` field — so callers can implement their own
    resubmission policy.  The client itself never retries a 503 on
    ``POST /v1/jobs``: job creation is not idempotent, and only
    *transport* failures (where no response arrived) are ever retried.
    """

    def __init__(self, message: str, status: int | None = None,
                 retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


class JobFailed(ServiceError):
    """The submitted job failed terminally; the message is the job's
    error."""


class SweepClient:
    """Client for one sweep service base URL.

    Parameters
    ----------
    base_url:
        ``http://host:port`` (the path must be empty or ``/``).
    timeout_s:
        Per-request socket timeout.
    backoff_s:
        Transport-retry schedule; defaults to :data:`RETRY_BACKOFF_S`.
    sleep:
        Injection point for the backoff sleeper (tests pass a recorder;
        production uses ``time.sleep``).
    """

    def __init__(self, base_url: str,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 backoff_s: tuple[float, ...] = RETRY_BACKOFF_S,
                 sleep=time.sleep) -> None:
        split = urlsplit(base_url)
        if split.scheme not in ("http", "") or split.path.strip("/"):
            raise ValueError(f"base_url must be http://host:port, "
                             f"got {base_url!r}")
        netloc = split.netloc or split.path
        host, _, port = netloc.partition(":")
        if not host or not port:
            raise ValueError(f"base_url must name host and port, "
                             f"got {base_url!r}")
        self.host = host
        self.port = int(port)
        self.timeout_s = timeout_s
        self.backoff_s = tuple(backoff_s)
        self.sleep = sleep

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Job API
    # ------------------------------------------------------------------
    def experiments(self) -> list[str]:
        """Experiment names the service will accept."""
        return self._request_json("GET", "/v1/experiments")["experiments"]

    def submit(self, experiment: str,
               options: RunOptions | None = None) -> str:
        """Submit one job; returns the job id."""
        if options is None:
            options = RunOptions()
        body = json.dumps({"experiment": experiment,
                           "options": options.to_dict()},
                          sort_keys=True)
        return self._request_json("POST", "/v1/jobs", body=body)["job"]

    def job(self, job_id: str) -> dict:
        """The job's current record (state + exec counters)."""
        return self._request_json("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        """Records of every job on the service, in submission order."""
        return self._request_json("GET", "/v1/jobs")["jobs"]

    def wait(self, job_id: str, poll_s: float = DEFAULT_POLL_S,
             timeout_s: float | None = None) -> dict:
        """Poll until the job reaches a terminal state; returns the
        terminal record.  ``timeout_s`` bounds the wait (a
        :class:`ServiceError` is raised on expiry)."""
        waited = 0.0
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed"):
                return record
            if timeout_s is not None and waited >= timeout_s:
                raise ServiceError(
                    f"job {job_id} still {record['state']} after "
                    f"{timeout_s:g}s")
            self.sleep(poll_s)
            waited += poll_s

    def wait_many(self, job_ids: list[str],
                  poll_s: float = DEFAULT_POLL_S,
                  timeout_s: float | None = None) -> dict[str, dict]:
        """Poll until *every* job is terminal; returns id → terminal
        record.

        The concurrent-submission companion to :meth:`wait`: one shared
        poll loop (and one shared ``timeout_s`` budget) instead of
        serial per-job waits, so the wall time tracks the *slowest* job
        rather than the sum — which is the whole point of
        ``serve --job-concurrency``.
        """
        records: dict[str, dict] = {}
        waited = 0.0
        while True:
            for job_id in job_ids:
                if job_id in records:
                    continue
                record = self.job(job_id)
                if record["state"] in ("done", "failed"):
                    records[job_id] = record
            if len(records) == len(set(job_ids)):
                return {job_id: records[job_id] for job_id in job_ids}
            if timeout_s is not None and waited >= timeout_s:
                laggards = sorted(set(job_ids) - set(records))
                raise ServiceError(
                    f"jobs {', '.join(laggards)} still not terminal "
                    f"after {timeout_s:g}s")
            self.sleep(poll_s)
            waited += poll_s

    def stream(self, job_id: str):
        """Yield the job's events in order, live, until the terminal
        ``state`` event (inclusive).

        Mid-stream disconnects reconnect with the last seen ``seq`` as
        the cursor after the deterministic backoff, so the yielded
        sequence is gapless and duplicate-free regardless of transport
        faults.
        """
        cursor = -1
        attempt = 0
        while True:
            connection, response = self._open_stream(job_id, cursor)
            progressed = False
            try:
                while True:
                    line = response.readline()
                    if not line:
                        break  # EOF: disconnect (terminal event returns)
                    try:
                        event = json.loads(line)
                    except ValueError:
                        break  # torn mid-line write: reconnect
                    cursor = event["seq"]
                    progressed = True
                    yield event
                    if event.get("kind") == "state" and \
                            event.get("state") in ("done", "failed"):
                        return
            except TRANSPORT_ERRORS:
                pass  # reconnect below
            finally:
                connection.close()
            if progressed:
                attempt = 0  # progress restores the full backoff budget
            elif attempt >= len(self.backoff_s):
                raise ServiceError(
                    f"event stream for job {job_id} kept dying "
                    f"({attempt} reconnects)")
            self.sleep(self.backoff_s[attempt])
            if not progressed:
                attempt += 1

    def result(self, job_id: str, wait: bool = True) -> str:
        """The job's result JSON text, byte-identical to the local
        ``run_experiment(...).to_json()`` for the same submission.

        ``wait=True`` (default) blocks until the job is terminal first;
        a failed job raises :class:`JobFailed`.
        """
        if wait:
            record = self.wait(job_id)
            if record["state"] == "failed":
                raise JobFailed(record.get("error") or "job failed")
        status, body, headers = self._request(
            "GET", f"/v1/jobs/{job_id}/result")
        if status == 200:
            return body.decode("utf-8")
        self._raise_http(status, body, headers)

    def spans(self, job_id: str) -> str:
        """The finished job's span-document JSON text (the same shape
        ``repro run --spans FILE`` writes locally); input for
        ``repro spans --url``."""
        status, body, headers = self._request(
            "GET", f"/v1/jobs/{job_id}/spans")
        if status == 200:
            return body.decode("utf-8")
        self._raise_http(status, body, headers)

    # ------------------------------------------------------------------
    # Observability API
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Liveness: the parsed ``/v1/healthz`` body (200 expected)."""
        return self._request_json("GET", "/v1/healthz")

    def ready(self) -> dict:
        """Readiness: the parsed ``/v1/readyz`` body with a ``ready``
        key added, returned for **both** 200 and 503 answers (other
        statuses raise :class:`ServiceError`)."""
        status, body, headers = self._request("GET", "/v1/readyz")
        if status not in (200, 503):
            self._raise_http(status, body, headers)
        doc = json.loads(body)
        doc["ready"] = status == 200
        return doc

    def metrics_text(self) -> str:
        """The raw ``/v1/metrics`` Prometheus exposition document."""
        status, body, headers = self._request("GET", "/v1/metrics")
        if status != 200:
            self._raise_http(status, body, headers)
        return body.decode("utf-8")

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)

    def _attempts(self):
        """Yield per-attempt backoff delays: one initial attempt plus
        one retry per schedule entry."""
        yield None
        for delay in self.backoff_s:
            yield delay

    def _request(self, method: str, path: str,
                 body: str | None = None) \
            -> tuple[int, bytes, dict[str, str]]:
        """One request with transport retries; returns (status, body,
        headers).  Header names are lower-cased.

        Retries cover *transport* failures only — once any HTTP status
        arrives it is returned as-is, so non-idempotent requests
        (``POST /v1/jobs``) are never replayed on a 503 or any other
        protocol-level answer.
        """
        error: Exception | None = None
        for delay in self._attempts():
            if delay is not None:
                self.sleep(delay)
            connection = self._connect()
            try:
                headers = {"Content-Type": "application/json"} \
                    if body is not None else {}
                connection.request(method, path, body=body,
                                   headers=headers)
                response = connection.getresponse()
                response_headers = {name.lower(): value for name, value
                                    in response.getheaders()}
                return response.status, response.read(), response_headers
            except TRANSPORT_ERRORS as exc:
                error = exc
            finally:
                connection.close()
        raise ServiceError(
            f"cannot reach sweep service at {self.base_url}: "
            f"{type(error).__name__}: {error}")

    def _request_json(self, method: str, path: str,
                      body: str | None = None) -> dict:
        status, payload, headers = self._request(method, path, body=body)
        if status != 200:
            self._raise_http(status, payload, headers)
        return json.loads(payload)

    def _open_stream(self, job_id: str, cursor: int):
        """Open the events response with transport retries; returns
        ``(connection, response)`` with the response left unread."""
        path = f"/v1/jobs/{job_id}/events?after={cursor}"
        error: Exception | None = None
        for delay in self._attempts():
            if delay is not None:
                self.sleep(delay)
            connection = self._connect()
            try:
                connection.request("GET", path)
                response = connection.getresponse()
            except TRANSPORT_ERRORS as exc:
                error = exc
                connection.close()
                continue
            if response.status != 200:
                payload = response.read()
                connection.close()
                self._raise_http(response.status, payload)
            return connection, response
        raise ServiceError(
            f"cannot reach sweep service at {self.base_url}: "
            f"{type(error).__name__}: {error}")

    def _raise_http(self, status: int, payload: bytes,
                    headers: dict[str, str] | None = None):
        doc: dict = {}
        try:
            doc = json.loads(payload)
            message = doc.get("error", "") if isinstance(doc, dict) else ""
        except ValueError:
            message = payload.decode("utf-8", "replace").strip()
        retry_after_s = None
        if status == 503:
            raw = (headers or {}).get("retry-after")
            if raw is None and isinstance(doc, dict):
                raw = doc.get("retry_after_s")
            try:
                retry_after_s = float(raw) if raw is not None else None
            except (TypeError, ValueError):
                retry_after_s = None
        suffix = f" (retry after {retry_after_s:g}s)" \
            if retry_after_s is not None else ""
        raise ServiceError(f"service answered {status}: "
                           f"{message or 'no detail'}{suffix}",
                           status=status, retry_after_s=retry_after_s)
