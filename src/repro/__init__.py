"""DREAM: Low-Overhead Rowhammer Mitigation via Directed Refresh Management.

A full Python reproduction of the ISCA 2025 paper by Taneja & Qureshi:
a transaction-level DDR5 memory-system simulator with the DRFM interface,
the PARA / MINT / Graphene / ABACuS / PRAC tracker zoo, and the paper's
DREAM-R and DREAM-C designs, plus the complete experiment harness that
regenerates every table and figure of the evaluation.

Quick start::

    from repro import (SystemConfig, SimConfig, build_traces,
                       run_simulation, dream_r_mint_factory)

    system = SystemConfig.baseline()
    sim = SimConfig(requests_per_core=10_000)
    traces = build_traces("mcf", system, sim)
    baseline = run_simulation(system, traces, sim)
    protected = run_simulation(system, traces, sim,
                               dream_r_mint_factory(t_rh=2000),
                               "mint-dream-r")
"""

from repro.core import (ActiveTargetMonitor, DreamCConfig, DreamCPolicy,
                        DreamRMintPolicy, DreamRParaPolicy, GangMapper,
                        RecentMitigationQueue, compare_storage,
                        dream_c_config, dream_c_factory,
                        dream_r_mint_factory, dream_r_para_factory,
                        revised_parameters)
from repro.dram import (Command, DDR5Timing, Device, MOPMapper, Organization,
                        SubChannel)
from repro.mc import (MemoryController, coupled_mint_factory,
                      coupled_para_factory, no_mitigation_factory)
from repro.sim import (ComparisonResult, RunResult, SimConfig, SystemConfig,
                       run_comparison, run_simulation)
from repro.trackers import (abacus_factory, graphene_factory, moat_factory)
from repro.workloads import (PROFILES, MemoryTrace, WorkloadProfile,
                             build_traces, profile, profiles_for)

__version__ = "1.0.0"

__all__ = [
    "ActiveTargetMonitor",
    "Command",
    "ComparisonResult",
    "DDR5Timing",
    "Device",
    "DreamCConfig",
    "DreamCPolicy",
    "DreamRMintPolicy",
    "DreamRParaPolicy",
    "GangMapper",
    "MOPMapper",
    "MemoryController",
    "MemoryTrace",
    "Organization",
    "PROFILES",
    "RecentMitigationQueue",
    "RunResult",
    "SimConfig",
    "SubChannel",
    "SystemConfig",
    "WorkloadProfile",
    "__version__",
    "abacus_factory",
    "build_traces",
    "compare_storage",
    "coupled_mint_factory",
    "coupled_para_factory",
    "dream_c_config",
    "dream_c_factory",
    "dream_r_mint_factory",
    "dream_r_para_factory",
    "graphene_factory",
    "moat_factory",
    "no_mitigation_factory",
    "profile",
    "profiles_for",
    "revised_parameters",
    "run_comparison",
    "run_simulation",
]
