"""DREAM: Low-Overhead Rowhammer Mitigation via Directed Refresh Management.

A full Python reproduction of the ISCA 2025 paper by Taneja & Qureshi:
a transaction-level DDR5 memory-system simulator with the DRFM interface,
the PARA / MINT / Graphene / ABACuS / PRAC tracker zoo, and the paper's
DREAM-R and DREAM-C designs, plus the complete experiment harness that
regenerates every table and figure of the evaluation.

Quick start::

    from repro import (SystemConfig, SimConfig, build_traces,
                       run_simulation, dream_r_mint_factory)

    system = SystemConfig.baseline()
    sim = SimConfig(requests_per_core=10_000)
    traces = build_traces("mcf", system, sim)
    baseline = run_simulation(system, traces, sim)
    protected = run_simulation(system, traces, sim,
                               dream_r_mint_factory(t_rh=2000),
                               "mint-dream-r")

Whole experiments run through the registry with one options record::

    from repro import RunOptions, run_experiment

    result = run_experiment("fig9", RunOptions(mode="quick", seed=2025))

The experiment harness (``run_experiment`` / :class:`RunOptions`), the
sweep-execution substrate (:class:`SweepExecutor` / :class:`RunCache` /
``exec_runtime``), the sweep service (:class:`SweepService` /
:class:`SweepClient` / :class:`JobScheduler`) and the observability
entry points (:class:`Telemetry` / ``obs_runtime``) are part of the
curated surface below; everything deeper is internal and may move
between releases (see ``docs/api.md``).
"""

from repro.core import (ActiveTargetMonitor, DreamCConfig, DreamCPolicy,
                        DreamRMintPolicy, DreamRParaPolicy, GangMapper,
                        RecentMitigationQueue, compare_storage,
                        dream_c_config, dream_c_factory,
                        dream_r_mint_factory, dream_r_para_factory,
                        revised_parameters)
from repro.dram import (Command, DDR5Timing, Device, MOPMapper, Organization,
                        SubChannel)
from repro.mc import (MemoryController, coupled_mint_factory,
                      coupled_para_factory, no_mitigation_factory)
from repro.sim import (ComparisonResult, RunResult, SimConfig, SystemConfig,
                       run_comparison, run_simulation)
from repro.trackers import (abacus_factory, graphene_factory, moat_factory)
from repro.workloads import (PROFILES, MemoryTrace, WorkloadProfile,
                             build_traces, profile, profiles_for)

__version__ = "2.0.0"

#: Harness-level names resolved lazily: importing the experiment
#: registry pulls in the whole experiment suite, and the executor would
#: cycle back through ``repro.sim`` while this module is initialising.
_LAZY = {
    "BatchCellError": ("repro.sim.batched", "BatchCellError"),
    "BatchItem": ("repro.sim.batched", "BatchItem"),
    "CellPolicy": ("repro.exec.resilience", "CellPolicy"),
    "ExperimentResult": ("repro.experiments.common", "ExperimentResult"),
    "FailedCell": ("repro.exec.resilience", "FailedCell"),
    "FaultPlan": ("repro.exec.faults", "FaultPlan"),
    "JobScheduler": ("repro.service.jobs", "JobScheduler"),
    "RunCache": ("repro.exec.cache", "RunCache"),
    "RunOptions": ("repro.experiments.common", "RunOptions"),
    "ServiceError": ("repro.service.client", "ServiceError"),
    "SweepCheckpoint": ("repro.exec.resilience", "SweepCheckpoint"),
    "SweepClient": ("repro.service.client", "SweepClient"),
    "SweepExecutor": ("repro.exec.executor", "SweepExecutor"),
    "SweepFailure": ("repro.exec.resilience", "SweepFailure"),
    "SweepProgress": ("repro.obs.progress", "SweepProgress"),
    "SweepService": ("repro.service.server", "SweepService"),
    "SpanTracer": ("repro.obs.spans", "SpanTracer"),
    "Telemetry": ("repro.obs", "Telemetry"),
    "TelemetrySnapshot": ("repro.obs.snapshot", "TelemetrySnapshot"),
    "EventTrace": ("repro.obs.trace", "EventTrace"),
    "exec_runtime": ("repro.exec.runtime", None),
    "obs_runtime": ("repro.obs.runtime", None),
    "run_batch": ("repro.sim.batched", "run_batch"),
    "run_experiment": ("repro.experiments.registry", "run_experiment"),
    "run_simulation_batched": ("repro.sim.batched",
                               "run_simulation_batched"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = module if attr is None else getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "ActiveTargetMonitor",
    "BatchCellError",
    "BatchItem",
    "CellPolicy",
    "Command",
    "ComparisonResult",
    "DDR5Timing",
    "Device",
    "DreamCConfig",
    "DreamCPolicy",
    "DreamRMintPolicy",
    "DreamRParaPolicy",
    "EventTrace",
    "ExperimentResult",
    "FailedCell",
    "FaultPlan",
    "GangMapper",
    "JobScheduler",
    "MOPMapper",
    "MemoryController",
    "MemoryTrace",
    "Organization",
    "PROFILES",
    "RecentMitigationQueue",
    "RunCache",
    "RunOptions",
    "RunResult",
    "ServiceError",
    "SimConfig",
    "SpanTracer",
    "SubChannel",
    "SweepCheckpoint",
    "SweepClient",
    "SweepExecutor",
    "SweepFailure",
    "SweepProgress",
    "SweepService",
    "SystemConfig",
    "Telemetry",
    "TelemetrySnapshot",
    "WorkloadProfile",
    "__version__",
    "abacus_factory",
    "build_traces",
    "compare_storage",
    "coupled_mint_factory",
    "coupled_para_factory",
    "dream_c_config",
    "dream_c_factory",
    "dream_r_mint_factory",
    "dream_r_para_factory",
    "exec_runtime",
    "graphene_factory",
    "moat_factory",
    "no_mitigation_factory",
    "obs_runtime",
    "profile",
    "profiles_for",
    "revised_parameters",
    "run_batch",
    "run_comparison",
    "run_experiment",
    "run_simulation",
    "run_simulation_batched",
]
