"""Sub-channel model: 32 banks, bankgroups, shared data bus, DRFM engine.

A DDR5 channel contains two sub-channels, each with an independent 32-bit
data bus and 32 banks arranged as 8 bankgroups of 4 banks.  DRFM commands
are sub-channel scoped:

* ``DRFMsb`` blocks the same bank position in every bankgroup (8 banks)
  for tDRFMsb and mitigates the DAR of each of those banks.
* ``DRFMab`` blocks all 32 banks for tDRFMab and mitigates every DAR.
* ``NRR`` (hypothetical) blocks one bank for tNRR.

The number of *valid* DARs consumed by a single DRFM is the command's
realised Rowhammer-mitigation Level Parallelism (RLP); the sub-channel
records it for every mitigation command so experiments can reproduce the
paper's Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.bank import Bank
from repro.dram.commands import Command, blocking_banks
from repro.dram.timing import DDR5Timing


@dataclass(slots=True)
class MitigationEvent:
    """Record of one executed mitigation command (for RLP accounting)."""

    time_ps: int
    command: Command
    trigger_bank: int
    blocked_banks: int
    mitigated_rows: tuple[tuple[int, int], ...]  # (bank, row) pairs

    @property
    def rlp(self) -> int:
        """Rows actually mitigated by this command (realised RLP)."""
        return len(self.mitigated_rows)


@dataclass
class SubChannelStats:
    """Aggregated sub-channel activity."""

    refreshes: int = 0
    mitigation_commands: int = 0
    mitigated_rows: int = 0
    bus_busy_ps: int = 0

    def record_mitigation(self, event: MitigationEvent) -> None:
        self.mitigation_commands += 1
        self.mitigated_rows += event.rlp


class SubChannel:
    """One DDR5 sub-channel: banks, bankgroups, data bus, REF and DRFM."""

    def __init__(self, index: int, timing: DDR5Timing, num_banks: int = 32,
                 banks_per_group: int = 4,
                 record_mitigations: bool = False) -> None:
        if num_banks % banks_per_group:
            raise ValueError("num_banks must be a multiple of banks_per_group")
        self.index = index
        self.timing = timing
        self.num_banks = num_banks
        self.banks_per_group = banks_per_group
        self.banks = [Bank(i, timing) for i in range(num_banks)]
        self.bus_busy_until_ps = 0
        self.stats = SubChannelStats()
        self.record_mitigations = record_mitigations
        self.mitigation_log: list[MitigationEvent] = []
        #: Running RLP sums (kept even when the full log is disabled).
        self.rlp_total = 0
        self.rlp_commands = 0

    # ------------------------------------------------------------------
    # Data bus
    # ------------------------------------------------------------------
    def reserve_bus(self, earliest_ps: int) -> int:
        """Reserve one 64-byte burst slot; returns its completion time."""
        start = max(earliest_ps, self.bus_busy_until_ps)
        self.bus_busy_until_ps = start + self.timing.t_bus
        self.stats.bus_busy_ps += self.timing.t_bus
        return self.bus_busy_until_ps

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def refresh(self, now_ps: int) -> int:
        """Execute an all-bank REF: close rows, block every bank for tRFC."""
        until = now_ps + self.timing.t_rfc
        for bank in self.banks:
            bank.open_row = None
            bank.block_until(until)
        self.stats.refreshes += 1
        return until

    # ------------------------------------------------------------------
    # Mitigation commands
    # ------------------------------------------------------------------
    def _mitigation_duration(self, command: Command) -> int:
        if command is Command.DRFM_SB:
            return self.timing.t_drfm_sb
        if command is Command.DRFM_AB:
            return self.timing.t_drfm_ab
        if command is Command.NRR:
            return self.timing.t_nrr
        raise ValueError(f"{command} is not a mitigation command")

    def issue_mitigation(self, command: Command, trigger_bank: int,
                         now_ps: int,
                         row: int | None = None) -> MitigationEvent:
        """Execute NRR/DRFMsb/DRFMab triggered by ``trigger_bank``.

        For DRFM commands, every blocked bank with a valid DAR has that row
        mitigated and its DAR invalidated; every blocked bank (valid DAR or
        not) is stalled for the command's duration.  NRR has no DAR: it
        mitigates the explicitly specified ``row`` of ``trigger_bank``.
        Returns the resulting :class:`MitigationEvent` for RLP accounting.
        """
        duration = self._mitigation_duration(command)
        targets = blocking_banks(command, trigger_bank, self.num_banks,
                                 self.banks_per_group)
        until = now_ps + duration
        mitigated: list[tuple[int, int]] = []
        if command is Command.NRR:
            if row is None:
                raise ValueError("NRR requires an explicit row address")
            bank = self.banks[trigger_bank]
            bank.open_row = None
            bank.block_until(until)
            bank.stats.mitigated_rows += 1
            mitigated.append((trigger_bank, row))
        else:
            for bank_index in targets:
                bank = self.banks[bank_index]
                bank.open_row = None
                mitigated_row = bank.execute_mitigation(until)
                if mitigated_row is not None:
                    mitigated.append((bank_index, mitigated_row))
        event = MitigationEvent(
            time_ps=now_ps,
            command=command,
            trigger_bank=trigger_bank,
            blocked_banks=len(targets),
            mitigated_rows=tuple(mitigated),
        )
        self.stats.record_mitigation(event)
        self.rlp_total += event.rlp
        self.rlp_commands += 1
        if self.record_mitigations:
            self.mitigation_log.append(event)
        return event

    @property
    def average_rlp(self) -> float:
        """Mean rows mitigated per mitigation command so far."""
        if not self.rlp_commands:
            return 0.0
        return self.rlp_total / self.rlp_commands

    def valid_dar_count(self) -> int:
        """Number of banks whose DAR currently holds a row."""
        return sum(1 for bank in self.banks if bank.dar.row is not None)

    def bankgroup_of(self, bank: int) -> int:
        """Bankgroup index of ``bank``."""
        return bank // self.banks_per_group
