"""DRAM command vocabulary used by the memory controller and the device.

The command set mirrors the DDR5 commands the paper relies on, plus the
hypothetical per-bank Nearby-Row-Refresh (NRR) command assumed by prior
MC-side mitigation work:

* ``ACT`` / ``PRE`` / ``RD`` / ``WR`` — the usual row/column commands.
* ``PRE_SAMPLE`` — precharge with the DRFM sample bit asserted, which
  latches the currently-open row's address into the bank's DRFM Address
  Register (DAR).
* ``REF`` — periodic all-bank refresh.
* ``DRFM_SB`` / ``DRFM_AB`` — Directed Refresh Management commands that
  mitigate the row held in the DAR of 8 (same bank in every bankgroup) or
  all 32 banks of a sub-channel, blocking those banks for
  tDRFMsb / tDRFMab.
* ``NRR`` — the hypothetical single-bank mitigation command from prior
  work, modelled (as the paper does) with the same latency as DRFMsb but a
  one-bank blocking footprint.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Command(enum.Enum):
    """A DRAM command mnemonic."""

    ACT = "ACT"
    PRE = "PRE"
    PRE_SAMPLE = "PRE+S"
    RD = "RD"
    WR = "WR"
    REF = "REF"
    DRFM_SB = "DRFMsb"
    DRFM_AB = "DRFMab"
    NRR = "NRR"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Commands that close the open row of a bank.
ROW_CLOSING = frozenset({Command.PRE, Command.PRE_SAMPLE})

#: Commands that perform Rowhammer mitigation.
MITIGATING = frozenset({Command.DRFM_SB, Command.DRFM_AB, Command.NRR})


@dataclass(frozen=True)
class IssuedCommand:
    """A command as issued on the command bus, for tracing and debugging.

    Attributes
    ----------
    time_ps:
        Issue time in picoseconds.
    command:
        The command mnemonic.
    subchannel:
        Sub-channel index the command targets.
    bank:
        Bank index for bank-scoped commands, ``None`` for all-bank ones.
    row:
        Row address for row-scoped commands (ACT, PRE+S), else ``None``.
    """

    time_ps: int
    command: Command
    subchannel: int
    bank: int | None = None
    row: int | None = None

    def describe(self) -> str:
        """Human-readable one-line rendering of the command."""
        target = f"sc{self.subchannel}"
        if self.bank is not None:
            target += f".b{self.bank}"
        if self.row is not None:
            target += f".r{self.row}"
        return f"{self.time_ps}ps {self.command} {target}"


def blocking_banks(command: Command, bank: int, num_banks: int = 32,
                   banks_per_group: int = 4) -> tuple[int, ...]:
    """Return the banks blocked when ``command`` is issued targeting ``bank``.

    * NRR blocks only the target bank.
    * DRFMsb blocks the same bank position in every bankgroup (8 banks for
      a 32-bank / 8-bankgroup sub-channel).
    * DRFMab and REF block every bank in the sub-channel.

    Parameters
    ----------
    command:
        One of the mitigating commands or ``REF``.
    bank:
        The bank whose DAR/mitigation triggered the command.
    num_banks:
        Total banks per sub-channel.
    banks_per_group:
        Banks per bankgroup (DDR5: 4).
    """
    if command is Command.NRR:
        return (bank,)
    if command is Command.DRFM_SB:
        position = bank % banks_per_group
        return tuple(range(position, num_banks, banks_per_group))
    if command in (Command.DRFM_AB, Command.REF):
        return tuple(range(num_banks))
    raise ValueError(f"{command} has no blocking footprint")
