"""Physical address mapping (Minimalist Open Page, MOP4).

The paper uses the MOP4 mapping [Kaseridis+, MICRO'11]: each 4 KB OS page
is striped across banks in chunks of four consecutive 64-byte cache lines,
so a page touches 16 banks and an access stream with page locality spreads
across banks while keeping short row-buffer bursts.

Crucially for this paper, MOP maps a given page region to the **same RowID
in every bank** — which is why set-associative grouping (and ABACuS's
shared per-RowID counters) see hot counters for hot pages, and why
DREAM-C's randomized grouping deliberately breaks that correlation with
per-bank XOR masks.

The mapper works on 64-byte line addresses.  Bit layout from LSB:

``[line-in-MOP-chunk] [subchannel] [bank] [column-high] [row]``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.device import Organization

#: Cache-line size in bytes (fixed by the baseline system).
LINE_BYTES = 64

#: Lines per MOP chunk (MOP4).
MOP_CHUNK_LINES = 4

#: Lines in a 4 KB OS page.
PAGE_LINES = 4096 // LINE_BYTES


@dataclass(frozen=True)
class PhysicalLocation:
    """A decoded DRAM coordinate for one cache line."""

    subchannel: int
    bank: int
    row: int
    col: int


class MOPMapper:
    """MOP4 line-address to DRAM-coordinate mapper.

    Parameters
    ----------
    organization:
        Shape of the memory system being mapped.
    chunk_lines:
        Consecutive lines per bank before moving to the next bank
        (4 for MOP4).
    """

    def __init__(self, organization: Organization,
                 chunk_lines: int = MOP_CHUNK_LINES) -> None:
        if chunk_lines < 1:
            raise ValueError("chunk_lines must be positive")
        if organization.cols_per_row % chunk_lines:
            raise ValueError("cols_per_row must be a multiple of chunk_lines")
        self.organization = organization
        self.chunk_lines = chunk_lines
        self._fanout = organization.subchannels * organization.banks
        self._chunks_per_row = organization.cols_per_row // chunk_lines

    # ------------------------------------------------------------------
    @property
    def lines_per_row_stripe(self) -> int:
        """Lines covered by one RowID across all banks and sub-channels."""
        return self.organization.cols_per_row * self._fanout

    @property
    def total_lines(self) -> int:
        """Total mappable lines in the device."""
        return self.organization.total_rows * self.organization.cols_per_row

    def map_line(self, line: int) -> PhysicalLocation:
        """Decode a 64-byte line address into DRAM coordinates."""
        if line < 0:
            raise ValueError("line address must be non-negative")
        offset = line % self.chunk_lines
        chunk = line // self.chunk_lines
        fan = chunk % self._fanout
        subchannel = fan % self.organization.subchannels
        bank = fan // self.organization.subchannels
        remaining = chunk // self._fanout
        col_high = remaining % self._chunks_per_row
        row = (remaining // self._chunks_per_row) % \
            self.organization.rows_per_bank
        return PhysicalLocation(
            subchannel=subchannel,
            bank=bank,
            row=row,
            col=col_high * self.chunk_lines + offset,
        )

    def map_address(self, byte_address: int) -> PhysicalLocation:
        """Decode a byte address (convenience wrapper)."""
        return self.map_line(byte_address // LINE_BYTES)

    def line_of(self, location: PhysicalLocation) -> int:
        """Inverse mapping: DRAM coordinates back to a line address."""
        org = self.organization
        if not (0 <= location.subchannel < org.subchannels
                and 0 <= location.bank < org.banks
                and 0 <= location.row < org.rows_per_bank
                and 0 <= location.col < org.cols_per_row):
            raise ValueError(f"location out of range: {location}")
        offset = location.col % self.chunk_lines
        col_high = location.col // self.chunk_lines
        fan = location.bank * org.subchannels + location.subchannel
        chunk = ((location.row * self._chunks_per_row + col_high)
                 * self._fanout + fan)
        return chunk * self.chunk_lines + offset

    # ------------------------------------------------------------------
    # Page-level helpers used by the workload generators
    # ------------------------------------------------------------------
    def page_first_line(self, page: int) -> int:
        """First line address of 4 KB OS page ``page``."""
        return page * PAGE_LINES

    def banks_of_page(self, page: int) -> set[tuple[int, int]]:
        """The (subchannel, bank) pairs a 4 KB page is striped over."""
        first = self.page_first_line(page)
        pairs = set()
        for i in range(0, PAGE_LINES, self.chunk_lines):
            loc = self.map_line(first + i)
            pairs.add((loc.subchannel, loc.bank))
        return pairs

    def rows_of_page(self, page: int) -> set[int]:
        """The distinct RowIDs a 4 KB page maps to (MOP: usually one)."""
        first = self.page_first_line(page)
        return {self.map_line(first + i).row for i in range(PAGE_LINES)}
