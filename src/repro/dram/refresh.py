"""Periodic refresh (REF) scheduling.

A REF command is issued on each sub-channel every tREFI and blocks all of
its banks for tRFC.  ``refs_per_window`` REF commands make up one refresh
window (tREFW), after which every row has been refreshed once.

The scheduler exposes per-REF callbacks because several mechanisms in the
paper piggyback on the REF cadence:

* DREAM-C resets a slice of its counter table at every REF (staggered
  reset, Section 5.4).
* RMAQ entries expire after two tREFI (Section 6.1).
* The DRFM rate limit itself is defined in units of tREFI.
"""

from __future__ import annotations

from typing import Callable

from repro.dram.subchannel import SubChannel
from repro.dram.timing import DDR5Timing

RefCallback = Callable[[int, int], None]
"""Callback invoked as ``callback(ref_index, time_ps)`` on each REF."""


class RefreshScheduler:
    """Issues REF commands lazily as simulated time advances.

    The memory controller calls :meth:`advance` before servicing each
    request; any REF whose tREFI deadline has passed is executed first.
    This lazy approach keeps the hot path free of timer events while
    producing exactly one REF per tREFI per sub-channel.
    """

    def __init__(self, timing: DDR5Timing, subchannel: SubChannel) -> None:
        self.timing = timing
        self.subchannel = subchannel
        #: tREFI hoisted out of the dataclass for the advance loop.
        self.t_refi = timing.t_refi
        self.next_ref_ps = timing.t_refi
        self.ref_index = 0
        self._callbacks: list[RefCallback] = []

    def on_ref(self, callback: RefCallback) -> None:
        """Register a callback fired after every REF."""
        self._callbacks.append(callback)

    def advance(self, now_ps: int) -> None:
        """Issue every REF due at or before ``now_ps``.

        ``next_ref_ps`` and ``ref_index`` are kept current *before* the
        per-REF callbacks fire, so callbacks observe exactly the state
        the straightforward loop would show them.
        """
        next_ref = self.next_ref_ps
        if now_ps < next_ref:
            return
        refresh = self.subchannel.refresh
        callbacks = self._callbacks
        t_refi = self.t_refi
        while next_ref <= now_ps:
            refresh(next_ref)
            for callback in callbacks:
                callback(self.ref_index, next_ref)
            self.ref_index += 1
            next_ref = self.next_ref_ps = next_ref + t_refi

    @property
    def window_position(self) -> int:
        """Index of the current REF within its refresh window."""
        return self.ref_index % self.timing.refs_per_window

    @property
    def windows_completed(self) -> int:
        """Number of whole refresh windows completed so far."""
        return self.ref_index // self.timing.refs_per_window

    def rows_per_ref(self, rows_per_bank: int) -> int:
        """Rows each REF covers for a bank with ``rows_per_bank`` rows."""
        refs = self.timing.refs_per_window
        return max(1, rows_per_bank // refs)
