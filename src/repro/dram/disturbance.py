"""Victim-row disturbance model: from activations to bit flips.

The paper's threat model (Section 2.1) declares an attack successful if
any row receives more than ``T_RH`` activations *without being refreshed
or mitigated*.  This module models that end to end:

* every ACT of row ``r`` disturbs its physical neighbours — ``r±1`` at
  full strength and, for Half-Double-style transitive effects, ``r±2`` at
  a reduced ``distance-2 weight`` (Section 6 background);
* a **victim refresh** (from NRR/DRFM mitigation of an aggressor, or the
  row's periodic REF) restores the victim's charge, resetting its
  accumulated disturbance;
* a row whose accumulated disturbance crosses the device's threshold
  suffers a *bit flip*.

Two victim-refresh flavours model the JEDEC discussion of Section 6:

* **Bounded-Refresh** — a mitigation refreshes the immediate neighbours
  (r±1) always and the distance-2 neighbours only with probability
  ``p2`` (this is why mitigations themselves disturb further rows, and
  why JEDEC rate-limits DRFM);
* **Fractal Mitigation** [AutoRFM, HPCA'25] — refreshes neighbours at
  every distance ``d`` with probability ``p^(d-1)``, which bounds the
  transitive amplification and obviates the rate limit (Section 6.4).

The model is per-bank and purely additive, so it can shadow any
simulation: feed it the ACT stream and the mitigation events, then ask
for flips.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

#: Disturbance contributed to a distance-2 neighbour per ACT, as a
#: fraction of the distance-1 disturbance (Half-Double measurements put
#: it well under 1/10th).
DISTANCE2_WEIGHT = 0.05


class RefreshMode(enum.Enum):
    """Victim-refresh flavour used by mitigations."""

    #: Always refresh r+-1; refresh r+-2 with probability ``p2``.
    BOUNDED = "bounded"
    #: Refresh distance d with probability ``p ** (d - 1)`` (Fractal).
    FRACTAL = "fractal"


@dataclass(frozen=True)
class BitFlip:
    """One Rowhammer failure: a victim row crossed the threshold."""

    bank: int
    row: int
    time_ps: int
    disturbance: float


@dataclass
class DisturbanceConfig:
    """Parameters of the disturbance model.

    Attributes
    ----------
    t_rh:
        Device threshold: accumulated (weighted) activations at which a
        victim flips.  This is the *single-sided* budget per aggressor;
        double-sided attacks split it across two neighbours, matching
        the paper's double-sided T_RH = single-sided / 2 convention.
    mode:
        Victim-refresh flavour.
    p2:
        Bounded mode: probability a mitigation refreshes the distance-2
        neighbours.
    fractal_p:
        Fractal mode: per-distance decay probability.
    max_distance:
        Furthest neighbour modelled.
    """

    t_rh: int = 4000
    mode: RefreshMode = RefreshMode.BOUNDED
    p2: float = 0.5
    fractal_p: float = 0.5
    max_distance: int = 2


class DisturbanceModel:
    """Tracks per-row disturbance and detects bit flips.

    Rows are identified as ``(bank, row)``; the model is topology-aware
    only in the row index (physically adjacent rows are adjacent indices
    — adequate because the paper's analyses are per-bank).
    """

    def __init__(self, config: DisturbanceConfig, rows_per_bank: int,
                 seed: int = 0) -> None:
        if config.t_rh < 1:
            raise ValueError("t_rh must be positive")
        if not 0.0 <= config.p2 <= 1.0:
            raise ValueError("p2 must be a probability")
        self.config = config
        self.rows_per_bank = rows_per_bank
        self._charge: dict[tuple[int, int], float] = {}
        self._rng = np.random.default_rng(seed)
        self.flips: list[BitFlip] = []
        self.victim_refreshes = 0

    # ------------------------------------------------------------------
    def _disturb(self, bank: int, row: int, amount: float,
                 now_ps: int) -> None:
        if not 0 <= row < self.rows_per_bank:
            return
        key = (bank, row)
        value = self._charge.get(key, 0.0) + amount
        self._charge[key] = value
        if value >= self.config.t_rh:
            self.flips.append(BitFlip(bank=bank, row=row, time_ps=now_ps,
                                      disturbance=value))
            # The cell flipped; further counting restarts (the flip is
            # recorded — one event per crossing).
            self._charge[key] = 0.0

    def on_activation(self, bank: int, row: int, now_ps: int) -> None:
        """Record one aggressor activation: disturb the neighbours."""
        self._disturb(bank, row - 1, 1.0, now_ps)
        self._disturb(bank, row + 1, 1.0, now_ps)
        if self.config.max_distance >= 2:
            self._disturb(bank, row - 2, DISTANCE2_WEIGHT, now_ps)
            self._disturb(bank, row + 2, DISTANCE2_WEIGHT, now_ps)

    # ------------------------------------------------------------------
    def _refresh_row(self, bank: int, row: int) -> None:
        if 0 <= row < self.rows_per_bank:
            self._charge.pop((bank, row), None)
            self.victim_refreshes += 1

    def on_mitigation(self, bank: int, row: int, now_ps: int) -> None:
        """Apply a victim refresh for mitigated aggressor ``row``.

        The refreshed victims are themselves *activated* internally,
        which disturbs *their* neighbours — the transitive effect that
        motivates the DRFM rate limit.  Bounded-Refresh covers distance
        2 only probabilistically; Fractal covers each distance ``d``
        with probability ``p^(d-1)``.
        """
        config = self.config
        for side in (-1, 1):
            victim = row + side
            self._refresh_row(bank, victim)
            # The victim refresh re-activates the victim row: its own
            # neighbours (distance 2 from the aggressor) get disturbed.
            self._disturb(bank, victim + side, 1.0, now_ps)
            if config.mode is RefreshMode.BOUNDED:
                if self._rng.random() < config.p2:
                    self._refresh_row(bank, row + 2 * side)
            else:
                distance = 2
                probability = config.fractal_p
                while distance <= max(config.max_distance, 2):
                    if self._rng.random() < probability:
                        self._refresh_row(bank, row + distance * side)
                    distance += 1
                    probability *= config.fractal_p

    def on_periodic_refresh(self, bank: int, first_row: int,
                            count: int) -> None:
        """Periodic REF covering ``count`` rows starting at ``first_row``."""
        for row in range(first_row, min(first_row + count,
                                        self.rows_per_bank)):
            self._charge.pop((bank, row), None)

    # ------------------------------------------------------------------
    def charge(self, bank: int, row: int) -> float:
        """Current accumulated disturbance of a row."""
        return self._charge.get((bank, row), 0.0)

    def max_charge(self) -> float:
        """Highest live disturbance across all rows."""
        return max(self._charge.values(), default=0.0)

    @property
    def flipped(self) -> bool:
        """Whether any bit flip occurred."""
        return bool(self.flips)
