"""DDR5 timing parameters for the DREAM reproduction.

All times are expressed in integer **picoseconds** so that event ordering in
the discrete-event engine is exact (no floating-point time anywhere in the
simulator).  The values of :func:`DDR5Timing.jedec` mirror Table 2 of the
paper:

======================  =======================================
tRCD / tRP / tRC        14 ns / 14 ns / 46 ns
tDRFMsb / tDRFMab       240 ns / 280 ns
tREFI / tRFC            3900 ns / 410 ns
Refresh window          8192 REF commands (tREFW = 32 ms)
Bus                     6000 MT/s, 32-bit sub-channel bus
======================  =======================================

Because a pure-Python simulator cannot sweep 32 ms of memory time for dozens
of configurations, :meth:`DDR5Timing.scaled` shortens the refresh *window*
(fewer REF commands per window) while keeping every per-command timing —
and therefore the tRFC/tREFI refresh duty cycle — identical.  Users scaling
the window are expected to scale the number of rows per bank by the same
factor (see :class:`repro.dram.device.Organization`), which preserves the
activations-per-row-per-window statistics that all trackers depend on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Picoseconds per nanosecond, used throughout the package.
PS_PER_NS = 1000

#: Number of REF commands in a full JEDEC refresh window.
JEDEC_REFS_PER_WINDOW = 8192


def ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds."""
    return round(value * PS_PER_NS)


@dataclass(frozen=True)
class DDR5Timing:
    """Immutable bundle of DDR5 timing parameters (picoseconds).

    Attributes
    ----------
    t_rcd:
        ACT-to-column-command delay.
    t_rp:
        Precharge period (row close).
    t_rc:
        Minimum ACT-to-ACT delay to the same bank (row cycle).
    t_cl:
        CAS latency (column access).
    t_bus:
        Data-bus occupancy of one 64-byte transfer on the 32-bit
        sub-channel bus (16 beats at 6000 MT/s = ~2.67 ns).
    t_refi:
        Average interval between REF commands.
    t_rfc:
        REF execution time (all banks blocked).
    t_drfm_sb:
        DRFMsb execution time (8 banks blocked).
    t_drfm_ab:
        DRFMab execution time (32 banks blocked).
    t_nrr:
        Hypothetical NRR execution time; the paper assumes it equals
        tDRFMsb (single bank blocked).
    t_rrd:
        Minimum delay between ACTs to different banks (command-bus
        pacing of DREAM-C's gang-sampling rounds).
    refs_per_window:
        Number of REF commands per refresh window.  8192 for JEDEC;
        scaled-down configurations use fewer.
    """

    t_rcd: int = ns(14)
    t_rp: int = ns(14)
    t_rc: int = ns(46)
    t_cl: int = ns(14)
    t_bus: int = ns(16 / 6.0)  # 16 beats at 6 GT/s ~= 2.667 ns
    t_refi: int = ns(3900)
    t_rfc: int = ns(410)
    t_drfm_sb: int = ns(240)
    t_drfm_ab: int = ns(280)
    t_nrr: int = ns(240)
    t_rrd: int = ns(4)
    refs_per_window: int = JEDEC_REFS_PER_WINDOW

    @property
    def t_refw(self) -> int:
        """Length of the refresh window in picoseconds."""
        return self.t_refi * self.refs_per_window

    @property
    def t_ras(self) -> int:
        """Row-open minimum time (tRC - tRP)."""
        return self.t_rc - self.t_rp

    @property
    def refresh_duty_cycle(self) -> float:
        """Fraction of time a bank is blocked by REF (tRFC / tREFI)."""
        return self.t_rfc / self.t_refi

    @classmethod
    def jedec(cls) -> "DDR5Timing":
        """Full-size DDR5 configuration from Table 2 of the paper."""
        return cls(
            t_rcd=ns(14),
            t_rp=ns(14),
            t_rc=ns(46),
            t_cl=ns(14),
            t_bus=ns(16 / 6.0),  # 16 beats at 6 GT/s ~= 2.667 ns
            t_refi=ns(3900),
            t_rfc=ns(410),
            t_drfm_sb=ns(240),
            t_drfm_ab=ns(280),
            t_nrr=ns(240),
            refs_per_window=JEDEC_REFS_PER_WINDOW,
        )

    @classmethod
    def scaled(cls, refs_per_window: int = 256) -> "DDR5Timing":
        """JEDEC timings with a shortened refresh window.

        Only the *window length* changes; all per-command timings stay at
        their JEDEC values so that the refresh duty cycle, DRFM blocking
        footprints and bus bandwidth are unchanged.
        """
        if refs_per_window < 1:
            raise ValueError("refs_per_window must be positive")
        return replace(cls.jedec(), refs_per_window=refs_per_window)

    @classmethod
    def prac(cls, refs_per_window: int = JEDEC_REFS_PER_WINDOW) -> "DDR5Timing":
        """PRAC-extended timings (Section 7.1 of the paper).

        PRAC performs a read-modify-write of the per-row activation counter
        during precharge, which extends tRP from 14 ns to 36 ns and tRC
        accordingly.  This is the *intrinsic* slowdown source of
        PRAC-based designs such as MOAT.
        """
        base = cls.jedec()
        extra = ns(36) - base.t_rp
        return replace(
            base,
            t_rp=ns(36),
            t_rc=base.t_rc + extra,
            refs_per_window=refs_per_window,
        )

    def with_window(self, refs_per_window: int) -> "DDR5Timing":
        """Return a copy with a different refresh-window length."""
        if refs_per_window < 1:
            raise ValueError("refs_per_window must be positive")
        return replace(self, refs_per_window=refs_per_window)

    def validate(self) -> None:
        """Raise :class:`ValueError` if the parameters are inconsistent."""
        if min(self.t_rcd, self.t_rp, self.t_rc, self.t_cl, self.t_bus) <= 0:
            raise ValueError("all timing parameters must be positive")
        if self.t_rc < self.t_rcd + self.t_rp:
            raise ValueError("tRC must cover tRCD + tRP")
        if self.t_rfc >= self.t_refi:
            raise ValueError("tRFC must be smaller than tREFI")
        if self.t_drfm_sb > self.t_drfm_ab:
            raise ValueError("tDRFMsb must not exceed tDRFMab")
