"""DRAM device organization: channel -> sub-channels -> banks -> rows.

The baseline system of the paper (Table 2) is one 32 GB DDR5 DIMM with one
channel, two sub-channels, 32 banks per sub-channel and 128K rows per bank.
:class:`Organization` captures those shape parameters and provides a
scaled-down preset matched to :meth:`repro.dram.timing.DDR5Timing.scaled`,
so that activations-per-row-per-refresh-window statistics are preserved
when the refresh window is shortened for tractable pure-Python runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.subchannel import SubChannel
from repro.dram.timing import DDR5Timing, JEDEC_REFS_PER_WINDOW

#: Rows per bank in the paper's full-size configuration.
FULL_SIZE_ROWS_PER_BANK = 128 * 1024


@dataclass(frozen=True)
class Organization:
    """Shape of the memory system (counts, not timings).

    Attributes
    ----------
    channels:
        Independent channels (the baseline has 1).
    subchannels:
        Sub-channels per channel (DDR5: 2).
    banks:
        Banks per sub-channel (DDR5: 32).
    banks_per_group:
        Banks per bankgroup (DDR5: 4, i.e. 8 bankgroups).
    rows_per_bank:
        Rows in each bank.
    cols_per_row:
        64-byte cache lines per row (4 KB row = 64 lines, which makes
        the full-size device exactly the 32 GB DIMM of Table 2).
    """

    channels: int = 1
    subchannels: int = 2
    banks: int = 32
    banks_per_group: int = 4
    rows_per_bank: int = FULL_SIZE_ROWS_PER_BANK
    cols_per_row: int = 64

    @property
    def bankgroups(self) -> int:
        """Bankgroups per sub-channel."""
        return self.banks // self.banks_per_group

    @property
    def total_banks(self) -> int:
        """Banks across all channels and sub-channels."""
        return self.channels * self.subchannels * self.banks

    @property
    def total_rows(self) -> int:
        """Rows across the whole device."""
        return self.total_banks * self.rows_per_bank

    @property
    def row_bytes(self) -> int:
        """Bytes per row (64-byte lines)."""
        return self.cols_per_row * 64

    @property
    def capacity_bytes(self) -> int:
        """Total device capacity in bytes."""
        return self.total_rows * self.row_bytes

    @classmethod
    def full_size(cls) -> "Organization":
        """The paper's Table 2 organization (32 GB, 128K rows/bank)."""
        return cls()

    @classmethod
    def scaled(cls, refs_per_window: int = 256,
               subchannels: int = 2) -> "Organization":
        """Organization matched to a shortened refresh window.

        Rows per bank shrink by the same factor as the refresh window so
        that each REF still covers ``rows_per_bank / refs_per_window`` rows
        and per-row activation rates per window are preserved.
        """
        if refs_per_window < 1 or JEDEC_REFS_PER_WINDOW % refs_per_window:
            raise ValueError(
                "refs_per_window must divide the JEDEC window (8192)")
        factor = JEDEC_REFS_PER_WINDOW // refs_per_window
        return cls(
            subchannels=subchannels,
            rows_per_bank=FULL_SIZE_ROWS_PER_BANK // factor,
        )

    def validate(self) -> None:
        """Raise :class:`ValueError` on inconsistent shape parameters."""
        if self.banks % self.banks_per_group:
            raise ValueError("banks must be a multiple of banks_per_group")
        if min(self.channels, self.subchannels, self.banks,
               self.rows_per_bank, self.cols_per_row) < 1:
            raise ValueError("all organization counts must be positive")


class Device:
    """A DRAM device: the sub-channels of one channel.

    The simulator treats sub-channels independently (they have independent
    buses and independent DRFM scopes), so the device is a thin container
    plus convenience accessors.
    """

    def __init__(self, organization: Organization, timing: DDR5Timing,
                 record_mitigations: bool = False) -> None:
        organization.validate()
        timing.validate()
        if organization.channels != 1:
            raise NotImplementedError(
                "the simulator models one channel (the paper's Table 2 "
                "baseline); run independent channels as independent "
                "simulations")
        self.organization = organization
        self.timing = timing
        self.subchannels = [
            SubChannel(i, timing, organization.banks,
                       organization.banks_per_group,
                       record_mitigations=record_mitigations)
            for i in range(organization.subchannels)
        ]

    def subchannel(self, index: int) -> SubChannel:
        """The sub-channel with the given index."""
        return self.subchannels[index]

    def total_activations(self) -> int:
        """Total ACT commands executed across the device."""
        return sum(bank.stats.activations
                   for sc in self.subchannels for bank in sc.banks)

    def total_mitigated_rows(self) -> int:
        """Total rows mitigated by DRFM/NRR across the device."""
        return sum(sc.stats.mitigated_rows for sc in self.subchannels)

    def average_rlp(self) -> float:
        """Device-wide mean RLP across all mitigation commands."""
        rows = sum(sc.rlp_total for sc in self.subchannels)
        commands = sum(sc.rlp_commands for sc in self.subchannels)
        return rows / commands if commands else 0.0
