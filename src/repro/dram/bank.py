"""Bank state machine with a DRFM Address Register (DAR).

Each DDR5 bank in the model tracks:

* the currently-open row (open-page policy keeps rows open until a
  conflicting access or an explicit precharge),
* a ``busy_until`` timestamp covering command execution, REF and DRFM
  blocking windows, and
* the per-bank **DAR** — the single register DRFM uses to remember which
  aggressor row the MC wants mitigated.  The DAR is written by a
  ``PRE+Sample`` command and invalidated when a DRFM executes.

The bank intentionally does not know about trackers: sampling policy lives
in the memory controller / mitigation layer.  The bank only enforces DRAM
semantics (you cannot sample a row that is not open; a DRFM mitigates
whatever the DAR holds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.timing import DDR5Timing


@dataclass
class DARRegister:
    """The per-bank DRFM Address Register.

    Holds at most one row address.  ``sampled_at_ps`` records when the row
    was written, which the RLP/ security analyses use to measure the delay
    between sampling and mitigation.
    """

    row: int | None = None
    sampled_at_ps: int = 0

    @property
    def valid(self) -> bool:
        """Whether the register currently holds a row address."""
        return self.row is not None

    def write(self, row: int, now_ps: int) -> None:
        """Latch ``row`` into the register (overwrites any previous value)."""
        self.row = row
        self.sampled_at_ps = now_ps

    def invalidate(self) -> int | None:
        """Clear the register, returning the row it held (or ``None``)."""
        row = self.row
        self.row = None
        return row


@dataclass
class BankStats:
    """Per-bank activity counters."""

    activations: int = 0
    row_hits: int = 0
    row_conflicts: int = 0
    precharges: int = 0
    samples: int = 0
    mitigated_rows: int = 0
    blocked_time_ps: int = 0


@dataclass
class Bank:
    """One DRAM bank: open-row state, busy window, DAR, activity counters."""

    index: int
    timing: DDR5Timing
    open_row: int | None = None
    busy_until_ps: int = 0
    last_act_ps: int = -(1 << 62)
    dar: DARRegister = field(default_factory=DARRegister)
    stats: BankStats = field(default_factory=BankStats)

    def __post_init__(self) -> None:
        # Timing scalars hoisted out of the (property-bearing) timing
        # dataclass: activate/precharge run once per row miss and must
        # not pay attribute-chain or property-call cost per command.
        timing = self.timing
        self._t_rc = timing.t_rc
        self._t_rcd = timing.t_rcd
        self._t_ras = timing.t_ras
        self._t_rp = timing.t_rp

    # ------------------------------------------------------------------
    # Availability / blocking
    # ------------------------------------------------------------------
    def ready_at(self, now_ps: int) -> int:
        """Earliest time at or after ``now_ps`` the bank can accept a command."""
        return max(now_ps, self.busy_until_ps)

    def block_until(self, until_ps: int) -> None:
        """Extend the bank's busy window (REF / DRFM / NRR blocking)."""
        if until_ps > self.busy_until_ps:
            self.stats.blocked_time_ps += until_ps - max(
                self.busy_until_ps, 0)
            self.busy_until_ps = until_ps

    # ------------------------------------------------------------------
    # Row commands
    # ------------------------------------------------------------------
    def activate(self, row: int, now_ps: int) -> int:
        """Open ``row``; returns the time the row buffer holds valid data.

        Respects tRC relative to the previous activation.  The caller must
        have already closed any previously-open row.
        """
        if self.open_row is not None:
            raise RuntimeError(
                f"bank {self.index}: ACT to row {row} while row "
                f"{self.open_row} is open")
        busy = self.busy_until_ps
        if busy < now_ps:
            busy = now_ps
        tracked = self.last_act_ps + self._t_rc
        start = tracked if tracked > busy else busy
        self.open_row = row
        self.last_act_ps = start
        self.busy_until_ps = start + self._t_rcd
        self.stats.activations += 1
        return self.busy_until_ps

    def precharge(self, now_ps: int, sample: bool = False) -> int:
        """Close the open row; with ``sample`` latch it into the DAR.

        Returns the completion time of the precharge.  Sampling a bank with
        no open row is a protocol error.
        """
        if sample:
            if self.open_row is None:
                raise RuntimeError(
                    f"bank {self.index}: PRE+Sample with no open row")
            self.dar.write(self.open_row, now_ps)
            self.stats.samples += 1
        # tRAS: a row must stay open for at least tRC - tRP after its ACT.
        busy = self.busy_until_ps
        if busy < now_ps:
            busy = now_ps
        earliest = self.last_act_ps + self._t_ras
        start = earliest if earliest > busy else busy
        self.open_row = None
        self.busy_until_ps = start + self._t_rp
        self.stats.precharges += 1
        return self.busy_until_ps

    # ------------------------------------------------------------------
    # Mitigation
    # ------------------------------------------------------------------
    def execute_mitigation(self, until_ps: int) -> int | None:
        """Apply a DRFM/NRR to this bank: mitigate DAR row, block the bank.

        Returns the mitigated row, or ``None`` if the DAR was invalid (the
        bank is still blocked — this is exactly the wasted-stall case that
        motivates DREAM-R).
        """
        row = self.dar.invalidate()
        if row is not None:
            self.stats.mitigated_rows += 1
        self.block_until(until_ps)
        return row

    def describe(self) -> str:
        """Debug string with the bank's dynamic state."""
        row = "closed" if self.open_row is None else f"row={self.open_row}"
        dar = f"DAR={self.dar.row}" if self.dar.valid else "DAR=invalid"
        return (f"bank{self.index}[{row}, busy_until={self.busy_until_ps}, "
                f"{dar}]")
