"""DDR5 DRAM substrate: timings, banks, DRFM, refresh, address mapping."""

from repro.dram.address import (LINE_BYTES, MOP_CHUNK_LINES, PAGE_LINES,
                                MOPMapper, PhysicalLocation)
from repro.dram.bank import Bank, BankStats, DARRegister
from repro.dram.commands import (MITIGATING, ROW_CLOSING, Command,
                                 IssuedCommand, blocking_banks)
from repro.dram.device import FULL_SIZE_ROWS_PER_BANK, Device, Organization
from repro.dram.disturbance import (BitFlip, DisturbanceConfig,
                                    DisturbanceModel, RefreshMode)
from repro.dram.refresh import RefreshScheduler
from repro.dram.subchannel import MitigationEvent, SubChannel, SubChannelStats
from repro.dram.timing import JEDEC_REFS_PER_WINDOW, PS_PER_NS, DDR5Timing, ns

__all__ = [
    "Bank",
    "BankStats",
    "BitFlip",
    "Command",
    "DARRegister",
    "DDR5Timing",
    "Device",
    "DisturbanceConfig",
    "DisturbanceModel",
    "FULL_SIZE_ROWS_PER_BANK",
    "IssuedCommand",
    "JEDEC_REFS_PER_WINDOW",
    "LINE_BYTES",
    "MITIGATING",
    "MOPMapper",
    "MOP_CHUNK_LINES",
    "MitigationEvent",
    "Organization",
    "PAGE_LINES",
    "PS_PER_NS",
    "PhysicalLocation",
    "ROW_CLOSING",
    "RefreshMode",
    "RefreshScheduler",
    "SubChannel",
    "SubChannelStats",
    "blocking_banks",
    "ns",
]
