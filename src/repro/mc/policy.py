"""Mitigation-policy base classes and the controller-facing port.

A :class:`MitigationPolicy` is the MC-side logic that watches activations
on one sub-channel, decides which rows to sample into DARs, and issues
mitigation commands through a :class:`MitigationPort` (implemented by the
sub-channel controller).  The port exposes exactly the primitives the
paper's designs need:

* issue an NRR / DRFMsb / DRFMab command,
* perform *explicit sampling* (dummy ACT + Pre+Sample) of a chosen row,
* read DAR state, and
* stall a bank (ABO-style MC back-off for PRAC).

This module is a leaf: concrete policies (coupled baselines in
:mod:`repro.mc.mitigation`, trackers in :mod:`repro.trackers`, DREAM in
:mod:`repro.core`) all import from here.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.dram.bank import DARRegister
from repro.dram.commands import Command
from repro.dram.subchannel import MitigationEvent
from repro.dram.timing import DDR5Timing
from repro.exec.spec import spec_factory


class MitigationPort(Protocol):
    """Primitives a policy can invoke on its sub-channel controller."""

    timing: DDR5Timing
    num_banks: int
    banks_per_group: int

    def issue(self, command: Command, bank: int, now_ps: int,
              row: int | None = None) -> MitigationEvent:
        """Issue a mitigation command (NRR needs an explicit ``row``)."""
        ...

    def explicit_sample(self, bank: int, row: int, now_ps: int) -> int:
        """Dummy-ACT ``row`` and Pre+Sample it into the bank's DAR."""
        ...

    def dar(self, bank: int) -> DARRegister:
        """The DAR register of ``bank``."""
        ...

    def block_bank(self, bank: int, until_ps: int) -> None:
        """Stall ``bank`` until ``until_ps`` (ABO-style MC back-off)."""
        ...

    def valid_dar_count(self) -> int:
        """How many of the sub-channel's DARs currently hold a row."""
        ...


@dataclass(frozen=True)
class PolicyContext:
    """Construction-time context handed to policy factories.

    One policy instance is created per sub-channel; the context carries
    the sub-channel's shape and a derived seed so that every policy's
    random stream is independent and reproducible.
    """

    subchannel: int
    num_banks: int
    banks_per_group: int
    rows_per_bank: int
    timing: DDR5Timing
    seed: int

    def rng(self) -> np.random.Generator:
        """A generator seeded deterministically for this sub-channel."""
        return np.random.default_rng((self.seed, self.subchannel))


PolicyFactory = Callable[[PolicyContext], "MitigationPolicy"]


@dataclass
class PolicyStats:
    """Counters common to every mitigation policy."""

    activations_observed: int = 0
    selections: int = 0
    mitigations_issued: int = 0
    rows_mitigated: int = 0
    samples_skipped_rate_limit: int = 0

    def record_event(self, event: MitigationEvent) -> None:
        self.mitigations_issued += 1
        self.rows_mitigated += event.rlp


class MitigationPolicy(abc.ABC):
    """Base class for MC-side Rowhammer mitigation logic.

    Lifecycle: the sub-channel controller calls :meth:`bind` once, then
    :meth:`before_activate` for every ACT (row misses only — row-buffer
    hits do not activate) *before* the ACT is issued, and
    :meth:`on_sampled` right after a requested implicit Pre+Sample
    completes.
    """

    name = "base"

    def __init__(self) -> None:
        self.port: MitigationPort | None = None
        self.stats = PolicyStats()
        #: Optional per-sub-channel telemetry handle
        #: (:class:`repro.obs.SubchannelTelemetry`); ``None`` keeps the
        #: instrumented paths to a single pointer check.
        self.telemetry = None

    def bind(self, port: MitigationPort) -> None:
        """Attach the policy to its sub-channel controller."""
        self.port = port

    def record_event(self, event: MitigationEvent) -> None:
        """Account one issued mitigation command (stats + telemetry).

        Every concrete policy routes its executed mitigation events
        through here, which makes this the single chokepoint where the
        observability layer sees mitigations regardless of design.  The
        telemetry record also captures the DAR occupancy at issue time
        (how many DARs held a valid row when the command went out),
        which the ``repro trace`` analyzer summarises per design.
        """
        self.stats.record_event(event)
        telemetry = self.telemetry
        if telemetry is not None:
            valid_dars = getattr(self.port, "valid_dar_count", None)
            telemetry.mitigation(
                self.name, event,
                valid_dars() if valid_dars is not None else 0)

    @abc.abstractmethod
    def before_activate(self, bank: int, row: int, now_ps: int) -> bool:
        """Tracker check before an ACT; may issue commands via the port.

        Returns ``True`` when the MC must close this row with Pre+Sample
        after the access (implicit sampling of the current activation).
        """

    def on_sampled(self, bank: int, row: int, now_ps: int) -> None:
        """Hook fired after a requested implicit Pre+Sample completed."""

    def summary(self) -> dict[str, float]:
        """Policy statistics for result reporting."""
        return {
            "activations": self.stats.activations_observed,
            "selections": self.stats.selections,
            "mitigations": self.stats.mitigations_issued,
            "rows_mitigated": self.stats.rows_mitigated,
        }


class NoMitigation(MitigationPolicy):
    """Unprotected baseline: observe activations, never mitigate."""

    name = "none"

    def before_activate(self, bank: int, row: int, now_ps: int) -> bool:
        self.stats.activations_observed += 1
        return False


@spec_factory
def no_mitigation_factory() -> PolicyFactory:
    """Factory for the unprotected baseline."""
    return lambda context: NoMitigation()
