"""Queued memory scheduling: FCFS and FR-FCFS.

The main performance sweeps use the closed-loop arrival-order model of
:mod:`repro.sim.runner`, which captures bank blocking — the first-order
effect behind every result in the paper.  This module provides the
classic *queued* scheduler substrate for studies that need reordering:
requests buffer in per-sub-channel queues and a policy picks what to
issue whenever a bank becomes ready.

* **FCFS** — strictly oldest-first.
* **FR-FCFS** — *first-ready*: row-buffer hits first (oldest hit), then
  the oldest remaining request whose bank is available.

FR-FCFS raises the row-hit rate on locality-rich streams (fewer ACTs —
which also means fewer tracker events), at the cost of potential
starvation that real controllers cap; the cap is modelled with a simple
maximum-reorder window.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.mc.controller import SubChannelController


class SchedulingPolicy(enum.Enum):
    """Queue service order."""

    FCFS = "fcfs"
    FR_FCFS = "fr-fcfs"


@dataclass(slots=True)
class QueuedRequest:
    """One buffered request awaiting issue (per-request hot payload)."""

    arrival_ps: int
    bank: int
    row: int
    tag: int = 0
    issued_ps: int | None = None
    finish_ps: int | None = None

    @property
    def latency_ps(self) -> int:
        """Arrival-to-data latency (only valid once finished)."""
        if self.finish_ps is None:
            raise RuntimeError("request has not finished")
        return self.finish_ps - self.arrival_ps


@dataclass
class SchedulerStats:
    """Aggregate scheduling outcomes."""

    issued: int = 0
    total_latency_ps: int = 0
    row_hit_issues: int = 0
    reorders: int = 0

    @property
    def average_latency_ps(self) -> float:
        return self.total_latency_ps / self.issued if self.issued else 0.0


class QueuedScheduler:
    """Open-loop queued front end over a sub-channel controller.

    Usage: ``enqueue`` requests (any order of arrival times), then
    ``run`` to drain the queue.  The scheduler advances time to the next
    point where some request can issue and picks per the policy.
    """

    def __init__(self, controller: SubChannelController,
                 policy: SchedulingPolicy = SchedulingPolicy.FR_FCFS,
                 reorder_window: int = 16) -> None:
        if reorder_window < 1:
            raise ValueError("reorder_window must be positive")
        self.controller = controller
        self.policy = policy
        self.reorder_window = reorder_window
        self.queue: list[QueuedRequest] = []
        self.stats = SchedulerStats()
        self.now_ps = 0

    def enqueue(self, request: QueuedRequest) -> None:
        """Add a request to the queue."""
        self.queue.append(request)

    def _candidates(self) -> list[QueuedRequest]:
        """Arrived requests, oldest first, capped to the reorder window."""
        arrived = [request for request in self.queue
                   if request.arrival_ps <= self.now_ps]
        arrived.sort(key=lambda request: request.arrival_ps)
        return arrived[:self.reorder_window]

    def _pick(self, candidates: list[QueuedRequest]) -> QueuedRequest:
        if self.policy is SchedulingPolicy.FCFS:
            return candidates[0]
        banks = self.controller.subchannel.banks
        for request in candidates:
            if banks[request.bank].open_row == request.row:
                if request is not candidates[0]:
                    self.stats.reorders += 1
                self.stats.row_hit_issues += 1
                return request
        return candidates[0]

    def _advance_to_next_arrival(self) -> None:
        pending = min(request.arrival_ps for request in self.queue)
        if pending > self.now_ps:
            self.now_ps = pending

    def step(self) -> QueuedRequest | None:
        """Issue one request; returns it, or ``None`` if queue is empty."""
        if not self.queue:
            return None
        candidates = self._candidates()
        if not candidates:
            self._advance_to_next_arrival()
            candidates = self._candidates()
        request = self._pick(candidates)
        self.queue.remove(request)
        request.issued_ps = self.now_ps
        request.finish_ps = self.controller.service(request.bank,
                                                    request.row,
                                                    self.now_ps)
        # The next issue decision happens when this access's column
        # command completes (command-bus granularity of the model).
        self.now_ps = max(self.now_ps, request.finish_ps
                          - self.controller.timing.t_bus)
        self.stats.issued += 1
        self.stats.total_latency_ps += request.latency_ps
        return request

    def run(self) -> list[QueuedRequest]:
        """Drain the queue; returns the issued requests in issue order."""
        finished = []
        while self.queue:
            request = self.step()
            if request is not None:
                finished.append(request)
        return finished
