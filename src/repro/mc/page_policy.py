"""Row-buffer page policies.

The baseline system uses an open-page policy (Table 2): rows stay open
after an access, so locality turns into row-buffer hits and the tracker
only sees the ACTs that remain.  A closed-page policy precharges after
every access — simpler controllers, no conflict penalty, but **every**
access becomes an activation, which matters enormously for Rowhammer
defenses: the tracker-visible ACT rate (and hence mitigation rate) can
triple.

The page-policy ablation quantifies that interaction; open-page is the
paper's configuration throughout.
"""

from __future__ import annotations

import enum


class PagePolicy(enum.Enum):
    """Row-closure strategy after a column access."""

    #: Keep the row open until a conflict or an explicit closure.
    OPEN = "open"
    #: Precharge immediately after every access.
    CLOSED = "closed"

    @property
    def closes_after_access(self) -> bool:
        """Whether the controller precharges right after the access."""
        return self is PagePolicy.CLOSED


def describe(policy: PagePolicy) -> str:
    """One-line description used in logs and experiment rows."""
    if policy is PagePolicy.OPEN:
        return "open-page (MOP baseline: locality becomes row hits)"
    return "closed-page (every access activates; ACT rate maximal)"
