"""Command-bus tracing for protocol verification and debugging.

An optional :class:`CommandTracer` can be attached to a
:class:`~repro.mc.controller.SubChannelController`; it then records every
DRAM command the controller issues (ACT, PRE, PRE+Sample, REF, NRR,
DRFMsb, DRFMab) as :class:`~repro.dram.commands.IssuedCommand` entries.

Two consumers:

* the protocol checker (:func:`verify_protocol`) asserts DRAM-legal
  sequencing per bank — no double-ACT without a close, Pre+Sample only
  on an open row — which the protocol tests run over full simulations;
* debugging: ``tracer.tail()`` renders the last commands human-readably.

Tracing costs a few percent of simulation speed, so the performance
sweeps leave it off.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from repro.dram.commands import Command, IssuedCommand


@dataclass
class CommandTracer:
    """Bounded in-memory ring buffer of issued commands.

    The buffer retains the most recent ``capacity`` commands: recording
    beyond capacity evicts the *oldest* entry (and counts it in
    ``dropped``), so a long simulation always keeps its latest window —
    the part :func:`verify_protocol` and ``tail`` care about.
    """

    subchannel: int = 0
    capacity: int = 1_000_000
    commands: deque[IssuedCommand] = field(default_factory=deque)
    dropped: int = 0

    def record(self, time_ps: int, command: Command, bank: int | None,
               row: int | None = None) -> None:
        """Append one command (oldest entries drop beyond capacity)."""
        self.commands.append(IssuedCommand(
            time_ps=time_ps, command=command,
            subchannel=self.subchannel, bank=bank, row=row))
        # Enforced here rather than via deque(maxlen=...) so that
        # adjusting ``capacity`` after construction keeps working.
        while len(self.commands) > self.capacity:
            self.commands.popleft()
            self.dropped += 1

    def count(self, command: Command) -> int:
        """Number of retained commands of one kind."""
        return sum(1 for issued in self.commands
                   if issued.command is command)

    def per_bank(self, bank: int) -> list[IssuedCommand]:
        """Retained commands targeting one bank, in issue order."""
        return [issued for issued in self.commands if issued.bank == bank]

    def tail(self, count: int = 20) -> str:
        """Human-readable rendering of the most recent commands."""
        start = max(0, len(self.commands) - count)
        return "\n".join(issued.describe() for issued in
                         itertools.islice(self.commands, start, None))


@dataclass(frozen=True)
class ProtocolViolation:
    """One DRAM-protocol violation found by the checker."""

    index: int
    command: IssuedCommand
    reason: str


def verify_protocol(tracer: CommandTracer) -> list[ProtocolViolation]:
    """Check per-bank command legality over the retained trace window.

    Rules enforced (in log order, which is the order the bank state
    machines applied the commands; the recorded timestamps are
    best-effort command-bus times and are not themselves checked):

    * ACT requires the bank's row to be closed;
    * PRE / PRE+Sample require an open row;
    * REF and DRFM close rows implicitly (banks precharge first).

    When the tracer dropped its oldest entries (``dropped > 0``), the
    retained window may start mid-stream, so a bank's *first* retained
    command only establishes state — a leading PRE that closes a row
    opened before the window is not a violation.
    """
    violations: list[ProtocolViolation] = []
    open_rows: dict[int, int | None] = {}
    truncated = tracer.dropped > 0
    for index, issued in enumerate(tracer.commands):
        command = issued.command
        if command is Command.REF:
            for bank in open_rows:
                open_rows[bank] = None
            truncated = False  # REF synchronises every bank's state.
            continue
        if command in (Command.DRFM_SB, Command.DRFM_AB):
            # The device precharges the blocked banks; per-bank scope is
            # not in the trace, so conservatively close everything for
            # DRFMab and the trigger bank for DRFMsb.
            if command is Command.DRFM_AB:
                for bank in open_rows:
                    open_rows[bank] = None
            elif issued.bank is not None:
                open_rows[issued.bank] = None
            continue
        if issued.bank is None:
            continue
        if truncated and issued.bank not in open_rows:
            # First sighting of this bank in a truncated window: adopt
            # the state the command implies instead of judging it.
            open_rows[issued.bank] = (issued.row if command is Command.ACT
                                      else None)
            continue
        state = open_rows.get(issued.bank)
        if command is Command.ACT:
            if state is not None:
                violations.append(ProtocolViolation(
                    index, issued,
                    f"ACT while row {state} is open"))
            open_rows[issued.bank] = issued.row
        elif command in (Command.PRE, Command.PRE_SAMPLE):
            if state is None:
                violations.append(ProtocolViolation(
                    index, issued, "precharge with no open row"))
            open_rows[issued.bank] = None
        elif command is Command.NRR:
            open_rows[issued.bank] = None
    return violations
