"""Command-bus tracing for protocol verification and debugging.

An optional :class:`CommandTracer` can be attached to a
:class:`~repro.mc.controller.SubChannelController`; it then records every
DRAM command the controller issues (ACT, PRE, PRE+Sample, REF, NRR,
DRFMsb, DRFMab) as :class:`~repro.dram.commands.IssuedCommand` entries.

Two consumers:

* the protocol checker (:func:`verify_protocol`) asserts DRAM-legal
  sequencing per bank — no double-ACT without a close, Pre+Sample only
  on an open row — which the protocol tests run over full simulations;
* debugging: ``tracer.tail()`` renders the last commands human-readably.

Tracing costs a few percent of simulation speed, so the performance
sweeps leave it off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.commands import Command, IssuedCommand


@dataclass
class CommandTracer:
    """Bounded in-memory log of issued commands."""

    subchannel: int = 0
    capacity: int = 1_000_000
    commands: list[IssuedCommand] = field(default_factory=list)
    dropped: int = 0

    def record(self, time_ps: int, command: Command, bank: int | None,
               row: int | None = None) -> None:
        """Append one command (oldest entries drop beyond capacity)."""
        if len(self.commands) >= self.capacity:
            self.dropped += 1
            return
        self.commands.append(IssuedCommand(
            time_ps=time_ps, command=command,
            subchannel=self.subchannel, bank=bank, row=row))

    def count(self, command: Command) -> int:
        """Number of recorded commands of one kind."""
        return sum(1 for issued in self.commands
                   if issued.command is command)

    def per_bank(self, bank: int) -> list[IssuedCommand]:
        """Commands targeting one bank, in issue order."""
        return [issued for issued in self.commands if issued.bank == bank]

    def tail(self, count: int = 20) -> str:
        """Human-readable rendering of the most recent commands."""
        return "\n".join(issued.describe()
                         for issued in self.commands[-count:])


@dataclass(frozen=True)
class ProtocolViolation:
    """One DRAM-protocol violation found by the checker."""

    index: int
    command: IssuedCommand
    reason: str


def verify_protocol(tracer: CommandTracer) -> list[ProtocolViolation]:
    """Check per-bank command legality over a trace.

    Rules enforced (in log order, which is the order the bank state
    machines applied the commands; the recorded timestamps are
    best-effort command-bus times and are not themselves checked):

    * ACT requires the bank's row to be closed;
    * PRE / PRE+Sample require an open row;
    * REF and DRFM close rows implicitly (banks precharge first).
    """
    violations: list[ProtocolViolation] = []
    open_rows: dict[int, int | None] = {}
    for index, issued in enumerate(tracer.commands):
        command = issued.command
        if command is Command.REF:
            for bank in open_rows:
                open_rows[bank] = None
            continue
        if command in (Command.DRFM_SB, Command.DRFM_AB):
            # The device precharges the blocked banks; per-bank scope is
            # not in the trace, so conservatively close everything for
            # DRFMab and the trigger bank for DRFMsb.
            if command is Command.DRFM_AB:
                for bank in open_rows:
                    open_rows[bank] = None
            elif issued.bank is not None:
                open_rows[issued.bank] = None
            continue
        if issued.bank is None:
            continue
        state = open_rows.get(issued.bank)
        if command is Command.ACT:
            if state is not None:
                violations.append(ProtocolViolation(
                    index, issued,
                    f"ACT while row {state} is open"))
            open_rows[issued.bank] = issued.row
        elif command in (Command.PRE, Command.PRE_SAMPLE):
            if state is None:
                violations.append(ProtocolViolation(
                    index, issued, "precharge with no open row"))
            open_rows[issued.bank] = None
        elif command is Command.NRR:
            open_rows[issued.bank] = None
    return violations
