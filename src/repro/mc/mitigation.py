"""The coupled baseline mitigation designs (the paper's Section 2.6).

PARA and MINT where DAR sampling and DRFM issue are tied together, with
any of NRR / DRFMsb / DRFMab as the mitigation command — the designs
whose overheads the paper's Figure 5 quantifies and DREAM-R then
improves.  The policy base classes live in :mod:`repro.mc.policy`; the
decoupled DREAM designs live in :mod:`repro.core.dream_r` and
:mod:`repro.core.dream_c`.

Every issued command routes through
:meth:`~repro.mc.policy.MitigationPolicy.record_event`, so these designs
are fully visible to the event-trace surface: ``repro trace`` renders
their per-command RLP histograms and DAR-occupancy summaries, which the
aggregate checks in :mod:`repro.analysis.rlp` cross-validate.
"""

from __future__ import annotations

from repro.dram.commands import Command
from repro.exec.spec import spec_factory
from repro.mc.policy import (MitigationPolicy, MitigationPort, NoMitigation,
                             PolicyContext, PolicyFactory, PolicyStats,
                             no_mitigation_factory)
from repro.trackers.mint import MintWindow, window_for_threshold
from repro.trackers.para import probability_for_threshold

__all__ = [
    "CoupledMintPolicy",
    "CoupledParaPolicy",
    "MitigationPolicy",
    "MitigationPort",
    "NoMitigation",
    "PolicyContext",
    "PolicyFactory",
    "PolicyStats",
    "coupled_mint_factory",
    "coupled_para_factory",
    "no_mitigation_factory",
]


class CoupledParaPolicy(MitigationPolicy):
    """PARA with coupled sampling and mitigation (Figure 4).

    On each ACT the row is selected with probability ``p``; a selected row
    is closed with Pre+Sample and a mitigation command is issued right
    away, so the tolerated threshold is identical to PARA-with-NRR.  The
    mitigation command is configurable: NRR (prior work's assumption),
    DRFMsb, or DRFMab.
    """

    def __init__(self, context: PolicyContext, t_rh: int,
                 command: Command = Command.DRFM_SB,
                 probability: float | None = None) -> None:
        super().__init__()
        if t_rh < 1:
            raise ValueError("t_rh must be positive")
        self.t_rh = t_rh
        self.command = command
        self.probability = (probability if probability is not None
                            else probability_for_threshold(t_rh))
        self._rng = context.rng()
        self.name = f"para-{command.value.lower()}"

    def before_activate(self, bank: int, row: int, now_ps: int) -> bool:
        self.stats.activations_observed += 1
        if self._rng.random() >= self.probability:
            return False
        self.stats.selections += 1
        if self.command is Command.NRR:
            # NRR mitigates the specified row directly; no DAR involved.
            event = self.port.issue(Command.NRR, bank, now_ps, row=row)
            self.record_event(event)
            return False
        return True

    def on_sampled(self, bank: int, row: int, now_ps: int) -> None:
        # Coupled design: mitigate as soon as the DAR is populated.
        event = self.port.issue(self.command, bank, now_ps)
        self.record_event(event)


class CoupledMintPolicy(MitigationPolicy):
    """MINT with coupled sampling and mitigation (Figure 6).

    Each bank runs an independent MINT window of ``W`` activations with a
    uniformly random selected slot.  The selected row is buffered at the
    MC (the paper's SAR) and — to avoid the timing side channel — both
    explicit sampling and the mitigation command are performed only when
    the window expires.
    """

    def __init__(self, context: PolicyContext, t_rh: int,
                 command: Command = Command.DRFM_SB,
                 window: int | None = None) -> None:
        super().__init__()
        self.t_rh = t_rh
        self.command = command
        self.window = window if window is not None else \
            window_for_threshold(t_rh)
        rng = context.rng()
        self.windows = [MintWindow(self.window, rng)
                        for _ in range(context.num_banks)]
        self.name = f"mint-{command.value.lower()}"

    def before_activate(self, bank: int, row: int, now_ps: int) -> bool:
        self.stats.activations_observed += 1
        state = self.windows[bank]
        # ``can >= window`` is MintWindow.expired inlined: this runs
        # once per ACT and the property descriptor is measurable there.
        if state.can >= state.window:
            selected = state.roll_over()
            if selected is not None:
                self.stats.selections += 1
                self._mitigate(bank, selected, now_ps)
        state.observe(row)
        return False

    def _mitigate(self, bank: int, row: int, now_ps: int) -> None:
        if self.command is Command.NRR:
            event = self.port.issue(Command.NRR, bank, now_ps, row=row)
        else:
            ready = self.port.explicit_sample(bank, row, now_ps)
            event = self.port.issue(self.command, bank, ready)
        self.record_event(event)


@spec_factory
def coupled_para_factory(t_rh: int,
                         command: Command = Command.DRFM_SB) -> PolicyFactory:
    """Factory for :class:`CoupledParaPolicy` (Figure 5 configurations)."""
    return lambda context: CoupledParaPolicy(context, t_rh, command)


@spec_factory
def coupled_mint_factory(t_rh: int,
                         command: Command = Command.DRFM_SB) -> PolicyFactory:
    """Factory for :class:`CoupledMintPolicy` (Figure 5 configurations)."""
    return lambda context: CoupledMintPolicy(context, t_rh, command)
