"""Memory-controller substrate: request service and mitigation port."""

from repro.mc.controller import MemoryController, SubChannelController
from repro.mc.page_policy import PagePolicy
from repro.mc.scheduler import (QueuedRequest, QueuedScheduler,
                                SchedulingPolicy)
from repro.mc.tracer import (CommandTracer, ProtocolViolation,
                             verify_protocol)
from repro.mc.mitigation import (CoupledMintPolicy, CoupledParaPolicy,
                                 MitigationPolicy, MitigationPort,
                                 NoMitigation, PolicyContext, PolicyFactory,
                                 PolicyStats, coupled_mint_factory,
                                 coupled_para_factory, no_mitigation_factory)

__all__ = [
    "CommandTracer",
    "CoupledMintPolicy",
    "CoupledParaPolicy",
    "MemoryController",
    "MitigationPolicy",
    "MitigationPort",
    "NoMitigation",
    "PagePolicy",
    "PolicyContext",
    "PolicyFactory",
    "PolicyStats",
    "ProtocolViolation",
    "QueuedRequest",
    "QueuedScheduler",
    "SchedulingPolicy",
    "SubChannelController",
    "coupled_mint_factory",
    "coupled_para_factory",
    "no_mitigation_factory",
    "verify_protocol",
]
