"""Transaction-level memory controller.

One :class:`SubChannelController` per sub-channel services LLC-miss
requests against the bank state machines with an open-page policy,
interleaves periodic REF, and exposes the :class:`MitigationPort`
primitives the mitigation policies drive.  The
:class:`MemoryController` is the per-channel front door the simulation
runner talks to.

The service path for one request:

1. advance the refresh scheduler (issue any due REF);
2. row-buffer hit  -> column access + data-bus burst, done;
3. row miss        -> consult the mitigation policy *before* the ACT (the
   paper's "tracker check", which lets DREAM-R issue a DRFM ahead of the
   activation when the DAR must be freed);
4. precharge a conflicting row, activate, column access, data burst;
5. if the policy asked for implicit sampling, close the row with
   Pre+Sample immediately after the access (Listing 1 of the paper) and
   notify the policy.
"""

from __future__ import annotations

from repro.dram.bank import DARRegister
from repro.dram.commands import Command
from repro.dram.device import Device, Organization
from repro.dram.refresh import RefreshScheduler
from repro.dram.subchannel import MitigationEvent, SubChannel
from repro.dram.timing import DDR5Timing
from repro.mc.page_policy import PagePolicy
from repro.mc.policy import (MitigationPolicy, PolicyContext,
                             PolicyFactory)
from repro.mc.tracer import CommandTracer


class SubChannelController:
    """Services requests for one sub-channel; implements MitigationPort."""

    def __init__(self, subchannel: SubChannel, timing: DDR5Timing,
                 policy: MitigationPolicy | None,
                 page_policy: PagePolicy = PagePolicy.OPEN) -> None:
        self.subchannel = subchannel
        self.timing = timing
        self.num_banks = subchannel.num_banks
        self.banks_per_group = subchannel.banks_per_group
        self.refresh = RefreshScheduler(timing, subchannel)
        self.policy = policy
        self.page_policy = page_policy
        self.tracer: CommandTracer | None = None
        # Hot-path caches: ``service`` runs once per request and must
        # not re-chase attribute chains or property descriptors.  The
        # cached ``next_ref_ps`` mirror is a lower bound on the
        # scheduler's real deadline — it only ever lags behind (an
        # advance from elsewhere moves the real deadline later), so a
        # stale mirror causes a redundant no-op advance, never a
        # missed REF.
        self.banks = subchannel.banks
        self._t_cl = timing.t_cl
        self._closes_after_access = page_policy.closes_after_access
        self._next_ref_ps = self.refresh.next_ref_ps
        if policy is not None:
            policy.bind(self)

    def attach_tracer(self, tracer: CommandTracer) -> None:
        """Record every issued command (protocol checks / debugging)."""
        self.tracer = tracer
        tracer.subchannel = self.subchannel.index
        self.refresh.on_ref(
            lambda _index, time_ps: tracer.record(time_ps, Command.REF,
                                                  None))

    # ------------------------------------------------------------------
    # MitigationPort implementation
    # ------------------------------------------------------------------
    def issue(self, command: Command, bank: int, now_ps: int,
              row: int | None = None) -> MitigationEvent:
        """Issue NRR/DRFMsb/DRFMab (see SubChannel.issue_mitigation)."""
        if self.tracer is not None:
            self.tracer.record(now_ps, command, bank, row)
        return self.subchannel.issue_mitigation(command, bank, now_ps, row)

    def explicit_sample(self, bank: int, row: int, now_ps: int) -> int:
        """Dummy-ACT ``row`` in ``bank`` and Pre+Sample it into the DAR.

        Costs the bank a full row cycle (any open row is closed first);
        returns the completion time of the sampling precharge.
        """
        target = self.subchannel.banks[bank]
        if target.open_row is not None:
            if self.tracer is not None:
                self.tracer.record(now_ps, Command.PRE, bank)
            target.precharge(now_ps)
        if self.tracer is not None:
            self.tracer.record(now_ps, Command.ACT, bank, row)
        target.activate(row, now_ps)
        done = target.precharge(now_ps, sample=True)
        if self.tracer is not None:
            self.tracer.record(done, Command.PRE_SAMPLE, bank, row)
        return done

    def dar(self, bank: int) -> DARRegister:
        """DAR register of ``bank``."""
        return self.subchannel.banks[bank].dar

    def block_bank(self, bank: int, until_ps: int) -> None:
        """Stall one bank (used for ABO-style MC back-off)."""
        self.subchannel.banks[bank].block_until(until_ps)

    def valid_dar_count(self) -> int:
        """How many DARs currently hold a sampled row."""
        return self.subchannel.valid_dar_count()

    # ------------------------------------------------------------------
    # Request service
    # ------------------------------------------------------------------
    def service(self, bank_index: int, row: int, now_ps: int) -> int:
        """Service one 64-byte read; returns its data completion time."""
        if now_ps >= self._next_ref_ps:
            refresh = self.refresh
            refresh.advance(now_ps)
            self._next_ref_ps = refresh.next_ref_ps
        bank = self.banks[bank_index]
        if bank.open_row == row:
            # Row-buffer hit: column access + burst only — the paper's
            # trackers observe activations, so no policy consultation.
            bank.stats.row_hits += 1
            busy = bank.busy_until_ps
            data_ready = (busy if busy > now_ps else now_ps) + self._t_cl
            return self.subchannel.reserve_bus(data_ready)
        tracer = self.tracer
        policy = self.policy
        sample_after = False
        if policy is not None:
            sample_after = policy.before_activate(bank_index, row, now_ps)
            # The policy may have re-opened state questions: a mitigation
            # it issued blocks the bank; the ACT below waits naturally.
        if bank.open_row is not None:
            bank.stats.row_conflicts += 1
            if tracer is not None:
                tracer.record(now_ps, Command.PRE, bank_index)
            bank.precharge(now_ps)
        row_ready = bank.activate(row, now_ps)
        if tracer is not None:
            tracer.record(row_ready - self.timing.t_rcd, Command.ACT,
                          bank_index, row)
        finish = self.subchannel.reserve_bus(row_ready + self._t_cl)
        if sample_after:
            bank.precharge(finish, sample=True)
            if tracer is not None:
                tracer.record(finish, Command.PRE_SAMPLE, bank_index,
                              row)
            policy.on_sampled(bank_index, row, finish)
        elif self._closes_after_access:
            if tracer is not None:
                tracer.record(finish, Command.PRE, bank_index)
            bank.precharge(finish)
        return finish

    @property
    def now_hint_ps(self) -> int:
        """Latest activity timestamp (refresh progress marker)."""
        return self.refresh.next_ref_ps - self.timing.t_refi


class MemoryController:
    """Front door: routes requests to per-sub-channel controllers.

    ``telemetry`` (a :class:`repro.obs.Telemetry`) is strictly opt-in:
    when given, each policy receives its per-sub-channel instrument
    handle and the timeline sampler hooks onto every refresh scheduler.
    When ``None`` (the default) no observability code runs at all.
    """

    def __init__(self, organization: Organization, timing: DDR5Timing,
                 policy_factory: PolicyFactory | None = None,
                 seed: int = 0,
                 record_mitigations: bool = False,
                 page_policy: PagePolicy = PagePolicy.OPEN,
                 telemetry=None) -> None:
        self.device = Device(organization, timing,
                             record_mitigations=record_mitigations)
        self.timing = timing
        self.organization = organization
        self.telemetry = telemetry
        self.controllers: list[SubChannelController] = []
        self.policies: list[MitigationPolicy] = []
        for index, subchannel in enumerate(self.device.subchannels):
            policy = None
            if policy_factory is not None:
                context = PolicyContext(
                    subchannel=index,
                    num_banks=organization.banks,
                    banks_per_group=organization.banks_per_group,
                    rows_per_bank=organization.rows_per_bank,
                    timing=timing,
                    seed=seed,
                )
                policy = policy_factory(context)
                self.policies.append(policy)
            controller = SubChannelController(subchannel, timing, policy,
                                              page_policy=page_policy)
            if telemetry is not None:
                if policy is not None:
                    policy.telemetry = telemetry.channel(index)
                telemetry.timeline.attach(controller, policy)
            self.controllers.append(controller)

    def service(self, subchannel: int, bank: int, row: int,
                now_ps: int) -> int:
        """Service one request; returns its completion time."""
        return self.controllers[subchannel].service(bank, row, now_ps)

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def total_activations(self) -> int:
        return self.device.total_activations()

    def total_row_hits(self) -> int:
        return sum(bank.stats.row_hits
                   for sc in self.device.subchannels for bank in sc.banks)

    def total_row_conflicts(self) -> int:
        return sum(bank.stats.row_conflicts
                   for sc in self.device.subchannels for bank in sc.banks)

    def total_mitigation_commands(self) -> int:
        return sum(sc.stats.mitigation_commands
                   for sc in self.device.subchannels)

    def average_rlp(self) -> float:
        return self.device.average_rlp()

    def bus_busy_ps(self) -> int:
        return sum(sc.stats.bus_busy_ps for sc in self.device.subchannels)

    def policy_summaries(self) -> list[dict[str, float]]:
        return [policy.summary() for policy in self.policies]
