"""In-DRAM Target Row Refresh (TRR) — the broken incumbent.

The paper's motivation (Sections 1-2): commercially deployed in-DRAM
trackers like TRR keep a *small* table of recently/frequently activated
rows and mitigate one of them when a REF arrives — and were broken by
TRRespass-style *many-sided* patterns that simply use more aggressor rows
than the tracker has entries, so the real aggressors keep getting evicted
before any REF can mitigate them.

This module models a representative sampler-based TRR: a table of
``entries`` rows maintained with frequency counts and eviction, one
victim refresh per REF opportunity.  It exists to *demonstrate the
bypass* (see ``tests/test_trr.py`` and the attack-analysis example):
a double-sided pattern is caught, a (entries+1)-sided pattern sails
through — which is exactly why the paper pursues MC-side mitigation
with DRFM instead of trusting opaque in-DRAM schemes.
"""

from __future__ import annotations

from repro.exec.spec import spec_factory
from repro.mc.policy import MitigationPolicy, PolicyContext, PolicyFactory
from repro.dram.commands import Command

#: Entry counts observed in deployed TRR implementations are tiny;
#: TRRespass found effective table sizes around 1-16.
DEFAULT_TRR_ENTRIES = 4


class TRRSampler:
    """Per-bank frequency table of a sampler-based TRR."""

    def __init__(self, entries: int = DEFAULT_TRR_ENTRIES) -> None:
        if entries < 1:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.counts: dict[int, int] = {}

    def observe(self, row: int) -> None:
        """Record one activation, evicting the coldest row when full."""
        if row in self.counts:
            self.counts[row] += 1
            return
        if len(self.counts) >= self.entries:
            coldest = min(self.counts, key=self.counts.__getitem__)
            # TRRespass's key weakness: new aggressors evict tracked
            # ones before any REF can mitigate them.
            del self.counts[coldest]
        self.counts[row] = 1

    def pick_target(self) -> int | None:
        """Row the next REF would mitigate (hottest tracked row)."""
        if not self.counts:
            return None
        target = max(self.counts, key=self.counts.__getitem__)
        return target

    def consume_target(self) -> int | None:
        """Pop the hottest row for mitigation at REF time."""
        target = self.pick_target()
        if target is not None:
            del self.counts[target]
        return target


class TRRPolicy(MitigationPolicy):
    """In-DRAM TRR modelled at the MC boundary for comparison runs.

    One victim refresh happens per bank per tREFI (piggybacked on REF,
    so it adds **no performance cost** — TRR's selling point).  Security
    is the problem: the tiny per-bank table is trivially thrashed.
    """

    def __init__(self, context: PolicyContext,
                 entries: int = DEFAULT_TRR_ENTRIES) -> None:
        super().__init__()
        self.samplers = [TRRSampler(entries)
                         for _ in range(context.num_banks)]
        self._t_refi = context.timing.t_refi
        self._next_ref = [self._t_refi] * context.num_banks
        self.name = "trr"

    def before_activate(self, bank: int, row: int, now_ps: int) -> bool:
        self.stats.activations_observed += 1
        if now_ps >= self._next_ref[bank]:
            # REF boundary: mitigate the tracked aggressor (free — the
            # victim refresh hides inside tRFC, so no command is issued
            # on the perf path; we use NRR bookkeeping with zero stall).
            while now_ps >= self._next_ref[bank]:
                self._next_ref[bank] += self._t_refi
            target = self.samplers[bank].consume_target()
            if target is not None:
                self.stats.selections += 1
                # Modelled as an NRR for mitigation bookkeeping; the
                # 240 ns stall slightly *overstates* TRR's cost (real
                # TRR hides inside tRFC), which is fine because this
                # policy is used for security demonstrations, not the
                # performance sweeps.
                event = self.port.issue(Command.NRR, bank, now_ps,
                                        row=target)
                self.record_event(event)
        self.samplers[bank].observe(row)
        return False


@spec_factory
def trr_factory(entries: int = DEFAULT_TRR_ENTRIES) -> PolicyFactory:
    """Factory for :class:`TRRPolicy` (motivation-section comparisons)."""
    return lambda context: TRRPolicy(context, entries)
