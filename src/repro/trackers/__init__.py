"""Tracker substrate: PARA, MINT, Graphene, ABACuS, PRAC/MOAT."""

from repro.trackers.abacus import (AbacusPolicy, AbacusTable, abacus_factory)
from repro.trackers.base import (CounterTracker, MitigationDemand,
                                 tracker_threshold)
from repro.trackers.indram_mint import (InDramMintPolicy,
                                        effective_window,
                                        indram_mint_factory,
                                        indram_mint_threshold)
from repro.trackers.graphene import (GraphenePolicy, MisraGriesTable,
                                     entries_for_threshold, graphene_factory,
                                     storage_kb_per_bank)
from repro.trackers.mint import (MintWindow, threshold_for_window,
                                 window_for_threshold)
from repro.trackers.para import (ParaSampler, epoch_failure_probability,
                                 probability_for_threshold,
                                 threshold_for_probability)
from repro.trackers.prac import MoatPolicy, PracCounters, moat_factory
from repro.trackers.trr import TRRPolicy, TRRSampler, trr_factory

__all__ = [
    "AbacusPolicy",
    "AbacusTable",
    "CounterTracker",
    "GraphenePolicy",
    "InDramMintPolicy",
    "MintWindow",
    "MisraGriesTable",
    "MitigationDemand",
    "MoatPolicy",
    "ParaSampler",
    "PracCounters",
    "abacus_factory",
    "effective_window",
    "entries_for_threshold",
    "epoch_failure_probability",
    "graphene_factory",
    "indram_mint_factory",
    "indram_mint_threshold",
    "moat_factory",
    "probability_for_threshold",
    "storage_kb_per_bank",
    "threshold_for_probability",
    "TRRPolicy",
    "TRRSampler",
    "threshold_for_window",
    "tracker_threshold",
    "trr_factory",
    "window_for_threshold",
]
