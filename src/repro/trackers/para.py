"""PARA: Probabilistic Adjacent Row Activation mitigation [Kim+, ISCA'14].

PARA performs *Independent and Identically Distributed* (IID) selection:
every activation is chosen for mitigation with probability ``p``.  The
paper (Appendix A) selects ``p`` so that, for a bank-MTTF of 40K years,
an unmitigated *epoch* (the activation gap between two consecutive PARA
selections) of length ``T_RH`` occurs with probability at most ``e^-20``
for a double-sided pattern:

    p = 20 / T_RH          (T_RH = 2000  ->  p = 1/100)

The epoch length is geometrically (continuum: exponentially) distributed,
which is also why PARA suffers under DREAM-R's delayed DRFM: consecutive
selections cluster (many short gaps), forcing early DRFMs — see
Section 4.7 and :mod:`repro.analysis.selection`.
"""

from __future__ import annotations

import math

import numpy as np

#: Target exponent for the acceptable per-epoch failure probability
#: (e^-20 double-sided) derived from a 40K-year bank MTTF (Appendix A).
MTTF_EXPONENT = 20.0


def probability_for_threshold(t_rh: int,
                              mttf_exponent: float = MTTF_EXPONENT) -> float:
    """PARA selection probability tolerating a double-sided ``t_rh``.

    Solves ``e^(-p * T) <= e^(-mttf_exponent)`` for the smallest ``p``.
    """
    if t_rh < 1:
        raise ValueError("t_rh must be positive")
    probability = mttf_exponent / t_rh
    if probability > 1.0:
        raise ValueError(
            f"T_RH={t_rh} is below the minimum PARA can tolerate "
            f"({math.ceil(mttf_exponent)}) at this failure target")
    return probability


def threshold_for_probability(probability: float,
                              mttf_exponent: float = MTTF_EXPONENT) -> float:
    """Inverse of :func:`probability_for_threshold`."""
    if not 0.0 < probability <= 1.0:
        raise ValueError("probability must be in (0, 1]")
    return mttf_exponent / probability


def epoch_failure_probability(t_rh: int, probability: float) -> float:
    """Probability a single epoch exceeds ``t_rh`` activations.

    Epochs are geometric with parameter ``probability``; the continuum
    approximation used by the paper is the exponential tail ``e^(-p*T)``.
    """
    return math.exp(-probability * t_rh)


class ParaSampler:
    """Stateless IID Bernoulli selector with a dedicated random stream."""

    def __init__(self, probability: float, rng: np.random.Generator) -> None:
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self.probability = probability
        self._rng = rng
        self.trials = 0
        self.selections = 0

    def select(self) -> bool:
        """Bernoulli trial: should this activation be mitigated?"""
        self.trials += 1
        chosen = self._rng.random() < self.probability
        if chosen:
            self.selections += 1
        return chosen

    def inter_selection_distances(self, activations: int) -> np.ndarray:
        """Monte-Carlo gaps between consecutive selections (Figure 11).

        Simulates ``activations`` Bernoulli trials and returns the
        activation distances between consecutive selections — for PARA
        these are geometrically distributed (many short gaps).
        """
        draws = self._rng.random(activations) < self.probability
        positions = np.flatnonzero(draws)
        if len(positions) < 2:
            return np.empty(0, dtype=np.int64)
        return np.diff(positions)
