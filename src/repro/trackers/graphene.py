"""Graphene: Misra-Gries frequent-row tracking [Park+, MICRO'20].

Graphene keeps, per bank, a Misra-Gries summary that provably identifies
every row receiving more than the tracker threshold of activations within
a refresh window.  A row is mitigated whenever its estimated count crosses
a multiple of the tracker threshold, so even a row that keeps hammering
receives a mitigation every ``T_TH`` activations.

Storage follows the paper's Table 1: the table needs one entry per
``T_TH`` activations that can occur in a refresh window per bank
(about 600K at full size), and each entry is a CAM tag (17-bit row), a
valid bit, and a counter — so storage doubles every time the threshold is
halved, and lookups require a large CAM (the complexity DREAM-C avoids).
"""

from __future__ import annotations

import math

from repro.exec.spec import spec_factory
from repro.mc.policy import (MitigationPolicy, PolicyContext,
                             PolicyFactory)
from repro.dram.commands import Command
from repro.trackers.base import (CounterTracker, MitigationDemand,
                                 tracker_threshold)

#: Maximum activations a single bank can receive in a full 32 ms refresh
#: window (tREFW / tRC, rounded as in the paper's footnote: ~600K).
FULL_WINDOW_ACTS_PER_BANK = 600_000

#: Row-address width used for storage accounting (128K rows -> 17 bits).
ROW_ADDRESS_BITS = 17


def entries_for_threshold(t_rh: int,
                          acts_per_window: int = FULL_WINDOW_ACTS_PER_BANK
                          ) -> int:
    """Misra-Gries entries required per bank for a given ``t_rh``.

    ``ceil(acts_per_window / T_TH)`` entries guarantee no row can exceed
    the tracker threshold untracked.  Reproduces Table 1: 1200 / 2400 /
    4800 entries at thresholds 1000 / 500 / 250.
    """
    return math.ceil(acts_per_window / tracker_threshold(t_rh))


def storage_bits_per_bank(t_rh: int,
                          acts_per_window: int = FULL_WINDOW_ACTS_PER_BANK
                          ) -> int:
    """Graphene CAM bits per bank (Table 1 / Table 6 storage column)."""
    entries = entries_for_threshold(t_rh, acts_per_window)
    counter_bits = math.ceil(math.log2(tracker_threshold(t_rh))) + 1
    entry_bits = ROW_ADDRESS_BITS + 1 + counter_bits
    return entries * entry_bits


def storage_kb_per_bank(t_rh: int) -> float:
    """Graphene storage per bank in KiB at full system size."""
    return storage_bits_per_bank(t_rh) / 8.0 / 1024.0


class MisraGriesTable(CounterTracker):
    """Per-bank Misra-Gries summary with a spill counter.

    ``observe`` implements the classic algorithm: hits increment their
    entry; misses fill a free entry at ``spill + 1``; with no free entry
    the spill counter absorbs the activation (which is safe because the
    entry count is sized so the spill can never reach the threshold
    within a window).  A mitigation demand fires each time an entry
    crosses a fresh multiple of the tracker threshold.
    """

    def __init__(self, bank: int, entries: int, threshold: int) -> None:
        if entries < 1 or threshold < 1:
            raise ValueError("entries and threshold must be positive")
        self.bank = bank
        self.entries = entries
        self.threshold = threshold
        self.counts: dict[int, int] = {}
        self.mitigation_marks: dict[int, int] = {}
        self.spill = 0

    def observe(self, bank: int, row: int) -> list[MitigationDemand]:
        if bank != self.bank:
            raise ValueError(f"table for bank {self.bank} observed bank "
                             f"{bank}")
        if row in self.counts:
            self.counts[row] += 1
        elif len(self.counts) < self.entries:
            self.counts[row] = self.spill + 1
            self.mitigation_marks[row] = (self.spill + 1) // self.threshold
        else:
            # Graphene's replacement rule: if some entry has sunk to the
            # spill level, swap it for the new row at spill + 1; otherwise
            # the spill counter absorbs the activation.
            victim = min(self.counts, key=self.counts.__getitem__)
            if self.counts[victim] <= self.spill:
                del self.counts[victim]
                self.mitigation_marks.pop(victim, None)
                self.counts[row] = self.spill + 1
                self.mitigation_marks[row] = \
                    (self.spill + 1) // self.threshold
            else:
                self.spill += 1
                return []
        crossed = self.counts[row] // self.threshold
        if crossed > self.mitigation_marks.get(row, 0):
            self.mitigation_marks[row] = crossed
            return [MitigationDemand(bank=bank, row=row)]
        return []

    def reset(self) -> None:
        self.counts.clear()
        self.mitigation_marks.clear()
        self.spill = 0

    def storage_bits(self) -> int:
        counter_bits = math.ceil(math.log2(self.threshold)) + 1
        return self.entries * (ROW_ADDRESS_BITS + 1 + counter_bits)

    def estimated_count(self, row: int) -> int:
        """Misra-Gries count estimate for ``row`` (>= true count - spill)."""
        return self.counts.get(row, self.spill)


class GraphenePolicy(MitigationPolicy):
    """MC-side Graphene: per-bank Misra-Gries tables + DRFM mitigation.

    Mitigations are rare for benign workloads (counters rarely reach the
    threshold), which is why Graphene's slowdown is ~0% with any
    mitigation command (Section 2.8) — its cost is storage, not time.
    """

    def __init__(self, context: PolicyContext, t_rh: int,
                 command: Command = Command.DRFM_SB) -> None:
        super().__init__()
        self.t_rh = t_rh
        self.command = command
        self.threshold = tracker_threshold(t_rh)
        window_ps = context.timing.t_refw
        acts_per_window = max(1, window_ps // context.timing.t_rc)
        self.entries = math.ceil(acts_per_window / self.threshold)
        self.tables = [
            MisraGriesTable(bank, self.entries, self.threshold)
            for bank in range(context.num_banks)
        ]
        self._window_ps = window_ps
        self._next_reset_ps = window_ps
        self.name = f"graphene-{command.value.lower()}"

    def before_activate(self, bank: int, row: int, now_ps: int) -> bool:
        self.stats.activations_observed += 1
        if now_ps >= self._next_reset_ps:
            for table in self.tables:
                table.reset()
            self._next_reset_ps += self._window_ps
        for demand in self.tables[bank].observe(bank, row):
            self.stats.selections += 1
            self._mitigate(demand, now_ps)
        return False

    def _mitigate(self, demand: MitigationDemand, now_ps: int) -> None:
        if self.command is Command.NRR:
            event = self.port.issue(Command.NRR, demand.bank, now_ps,
                                    row=demand.row)
        else:
            ready = self.port.explicit_sample(demand.bank, demand.row,
                                              now_ps)
            event = self.port.issue(self.command, demand.bank, ready)
        self.record_event(event)

    def storage_bits_per_bank(self) -> int:
        """Scaled-system storage of one per-bank table."""
        return self.tables[0].storage_bits()


@spec_factory
def graphene_factory(t_rh: int,
                     command: Command = Command.DRFM_SB) -> PolicyFactory:
    """Factory for :class:`GraphenePolicy`."""
    return lambda context: GraphenePolicy(context, t_rh, command)
