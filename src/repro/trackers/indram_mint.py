"""In-DRAM MINT: mitigation that cannibalises REF (Section 8, point 3).

MINT was originally an in-DRAM tracker: the DRAM samples one activation
per window and performs the victim refresh *inside a REF operation*
(stealing 240 of tRFC's 410 ns).  The catch the paper points out: DRAM
vendors typically budget only one aggressor-row mitigation every 4-8 REF
commands, so the effective MINT window is however many activations a
bank can receive in that many tREFI:

    W_eff  = acts_per_tREFI * refs_per_mitigation   (75 * 4..8)
    T_RH   = 20 * W_eff                             (~6K .. ~12K)

— 3-6x worse than the T_RH = 2K-class thresholds the MC-side designs
reach, and entirely hostage to how much REF time vendors can spare as
DRAM reliability degrades.  This module provides both the analytic
threshold and a runnable policy, so the claim is measurable
(tests/test_indram_mint.py hammers it next to MC-side MINT).
"""

from __future__ import annotations

from repro.core.rmaq import MAX_ACTS_PER_TREFI
from repro.dram.commands import Command
from repro.exec.spec import spec_factory
from repro.mc.policy import MitigationPolicy, PolicyContext, PolicyFactory
from repro.trackers.mint import THRESHOLD_PER_WINDOW


def effective_window(refs_per_mitigation: int,
                     acts_per_trefi: int = MAX_ACTS_PER_TREFI) -> int:
    """Activations between in-DRAM mitigation opportunities."""
    if refs_per_mitigation < 1:
        raise ValueError("refs_per_mitigation must be positive")
    return acts_per_trefi * refs_per_mitigation


def indram_mint_threshold(refs_per_mitigation: int,
                          acts_per_trefi: int = MAX_ACTS_PER_TREFI) -> int:
    """Double-sided T_RH tolerated by REF-stealing in-DRAM MINT.

    Reproduces the paper's Section 8 numbers: ~6K at one mitigation per
    4 REF, ~12K at one per 8.
    """
    return THRESHOLD_PER_WINDOW * effective_window(refs_per_mitigation,
                                                   acts_per_trefi)


class InDramMintPolicy(MitigationPolicy):
    """MINT with mitigation only at its REF-slot opportunities.

    Each bank runs a MINT window spanning all activations between two
    mitigation opportunities (every ``refs_per_mitigation`` tREFI); the
    selected row is mitigated at the opportunity.  The victim refresh
    itself hides inside tRFC, so — like the TRR model — the NRR issued
    here for bookkeeping slightly overstates the (zero) performance
    cost; the policy exists for security comparisons.
    """

    def __init__(self, context: PolicyContext,
                 refs_per_mitigation: int = 4) -> None:
        super().__init__()
        self.refs_per_mitigation = refs_per_mitigation
        self.window = effective_window(refs_per_mitigation)
        self._rng = context.rng()
        # Reservoir sampling per bank: the MINT window is "whatever
        # activations arrive between two opportunities", so a uniform
        # pick over a variable-length window is the faithful model.
        self._counts = [0] * context.num_banks
        self._selected: list[int | None] = [None] * context.num_banks
        self._period_ps = context.timing.t_refi * refs_per_mitigation
        self._next_opportunity = [self._period_ps] * context.num_banks
        self.name = f"indram-mint-{refs_per_mitigation}ref"

    def before_activate(self, bank: int, row: int, now_ps: int) -> bool:
        self.stats.activations_observed += 1
        if now_ps >= self._next_opportunity[bank]:
            while now_ps >= self._next_opportunity[bank]:
                self._next_opportunity[bank] += self._period_ps
            selected = self._selected[bank]
            self._selected[bank] = None
            self._counts[bank] = 0
            if selected is not None:
                self.stats.selections += 1
                event = self.port.issue(Command.NRR, bank, now_ps,
                                        row=selected)
                self.record_event(event)
        self._counts[bank] += 1
        if self._rng.random() < 1.0 / self._counts[bank]:
            self._selected[bank] = row
        return False


@spec_factory
def indram_mint_factory(refs_per_mitigation: int = 4) -> PolicyFactory:
    """Factory for :class:`InDramMintPolicy` (Section 8 comparisons)."""
    return lambda context: InDramMintPolicy(context, refs_per_mitigation)
