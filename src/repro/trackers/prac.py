"""PRAC / MOAT: Per-Row Activation Counting with Alert-Back-Off.

JEDEC's PRAC framework stores an activation counter alongside every DRAM
row; the counter is read-modified-written during precharge, which extends
tRP from 14 ns to 36 ns.  That timing extension is PRAC's *intrinsic*
slowdown — it applies to every row-buffer miss, mitigation or not, and
the paper measures it at ~9.7% regardless of threshold.

MOAT [Qureshi & Qazi, ASPLOS'25] is the secure PRAC policy the paper
implements: when any row's counter reaches the alert threshold (ATH), the
DRAM raises **Alert-Back-Off** (ABO); the MC stops issuing commands while
the DRAM mitigates the aggressor, then the counter resets.  For benign
workloads ABO essentially never fires (the *extrinsic* slowdown is
negligible) — the intrinsic timing tax dominates, which is exactly what
Figure 19 shows.

In this reproduction the intrinsic part is modelled by running the system
with :meth:`repro.dram.timing.DDR5Timing.prac` timings; this module
provides the counter/ABO machinery for the extrinsic part.
"""

from __future__ import annotations

from repro.dram.commands import Command
from repro.exec.spec import spec_factory
from repro.dram.timing import ns
from repro.mc.policy import (MitigationPolicy, PolicyContext,
                             PolicyFactory)
from repro.trackers.base import tracker_threshold

#: MC stall for one ABO mitigation episode (RFM-like recovery, ~350 ns).
DEFAULT_ABO_STALL_PS = ns(350)


class PracCounters:
    """Per-row activation counters for one sub-channel (in-DRAM state)."""

    def __init__(self, num_banks: int, alert_threshold: int) -> None:
        if alert_threshold < 1:
            raise ValueError("alert_threshold must be positive")
        self.alert_threshold = alert_threshold
        self.counts: list[dict[int, int]] = [dict() for _ in range(num_banks)]
        self.alerts = 0

    def record(self, bank: int, row: int) -> bool:
        """Count one activation; returns ``True`` when ABO must fire."""
        counts = self.counts[bank]
        value = counts.get(row, 0) + 1
        if value >= self.alert_threshold:
            # The ABO recovery mitigates the row and resets its counter.
            counts[row] = 0
            self.alerts += 1
            return True
        counts[row] = value
        return False

    def reset(self) -> None:
        """Refresh-window reset (each row's counter clears at its REF)."""
        for counts in self.counts:
            counts.clear()

    def max_count(self) -> int:
        """Highest live counter value (used by security tests)."""
        return max((max(c.values()) for c in self.counts if c), default=0)


class MoatPolicy(MitigationPolicy):
    """MOAT's extrinsic machinery: per-row counters + ABO stalls.

    Must be run on a system configured with PRAC timings
    (:meth:`repro.sim.config.SystemConfig.prac`) so the intrinsic slowdown
    is also present.  An ABO blocks the entire sub-channel for
    ``abo_stall_ps`` while the in-DRAM mitigation completes.
    """

    def __init__(self, context: PolicyContext, t_rh: int,
                 abo_stall_ps: int = DEFAULT_ABO_STALL_PS) -> None:
        super().__init__()
        self.t_rh = t_rh
        self.alert_threshold = tracker_threshold(t_rh)
        self.counters = PracCounters(context.num_banks, self.alert_threshold)
        self.abo_stall_ps = abo_stall_ps
        self._window_ps = context.timing.t_refw
        self._next_reset_ps = self._window_ps
        self._num_banks = context.num_banks
        self.name = "prac-moat"

    def before_activate(self, bank: int, row: int, now_ps: int) -> bool:
        self.stats.activations_observed += 1
        if now_ps >= self._next_reset_ps:
            self.counters.reset()
            self._next_reset_ps += self._window_ps
        if self.counters.record(bank, row):
            self.stats.selections += 1
            # ABO: the in-DRAM mitigation stalls the whole sub-channel.
            # Modelled as a DRFMab-footprint block of abo_stall_ps via the
            # port's blocking primitive (NRR row is the alerted row for
            # bookkeeping; the DRAM mitigates internally).
            event = self.port.issue(Command.NRR, bank, now_ps, row=row)
            self.record_event(event)
            self._stall_subchannel(now_ps)
        return False

    def _stall_subchannel(self, now_ps: int) -> None:
        until = now_ps + self.abo_stall_ps
        for bank_index in range(self._num_banks):
            self.port.block_bank(bank_index, until)

    def summary(self) -> dict[str, float]:
        data = super().summary()
        data["abo_alerts"] = self.counters.alerts
        return data


@spec_factory
def moat_factory(t_rh: int,
                 abo_stall_ps: int = DEFAULT_ABO_STALL_PS) -> PolicyFactory:
    """Factory for :class:`MoatPolicy` (Figure 19 PRAC configurations)."""
    return lambda context: MoatPolicy(context, t_rh, abo_stall_ps)
