"""ABACuS: All-Bank Activation Counters [Olgun+, USENIX Security'24].

ABACuS keeps **one counter per RowID, shared by all banks** of a
sub-channel (the paper's Section 5.8 treats this as equivalent to
DREAM-C's set-associative grouping).  To stop streaming workloads — whose
page stripes activate the same RowID in every bank back-to-back — from
inflating the shared counter 32x, each entry carries a *Sibling
Activation Vector* (SAV): one bit per bank.

Counter-update rule per activation of (bank, row):

* SAV bit for the bank clear  -> set the bit, skip the counter increment;
* SAV bit already set         -> increment the counter and restart the
  SAV round (clear all bits, set this bank's bit).

When the counter reaches the tracker threshold, the RowID is mitigated in
**all** banks (one gang round: explicit sampling into every DAR followed
by a DRFMab), and the entry resets.  The SAV costs 32 extra bits per
entry — 5.33x the 6-bit counter at T_RH=125 — which is exactly the
storage overhead Figure 17 compares against DREAM-C.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dram.commands import Command
from repro.exec.spec import spec_factory
from repro.mc.policy import (MitigationPolicy, PolicyContext,
                             PolicyFactory)
from repro.trackers.base import (CounterTracker, MitigationDemand,
                                 tracker_threshold)

#: Row-address space of the full-size system (128K rows -> 17 bits).
FULL_SIZE_ROW_COUNT = 128 * 1024


def counter_bits_for_threshold(t_rh: int) -> int:
    """Bits needed for an ABACuS activation counter (6 bits at T=125)."""
    return max(1, math.ceil(math.log2(tracker_threshold(t_rh) + 1)))


def storage_bits_per_subchannel(t_rh: int, num_banks: int = 32,
                                rows: int = FULL_SIZE_ROW_COUNT) -> int:
    """Total ABACuS table bits for one sub-channel.

    One entry per RowID, each holding a counter plus an SAV of
    ``num_banks`` bits.  ABACuS keeps all ``rows`` entries regardless of
    threshold, which is why its storage stays high at higher thresholds
    (Section 5.8).
    """
    entry_bits = counter_bits_for_threshold(t_rh) + num_banks
    return rows * entry_bits


def storage_kb_per_bank(t_rh: int, num_banks: int = 32,
                        rows: int = FULL_SIZE_ROW_COUNT) -> float:
    """ABACuS storage per bank in KiB (~19 KB/bank at T_RH=125)."""
    total_bits = storage_bits_per_subchannel(t_rh, num_banks, rows)
    return total_bits / 8.0 / 1024.0 / num_banks


class AbacusTable(CounterTracker):
    """The shared counter + SAV table for one sub-channel."""

    def __init__(self, rows: int, num_banks: int, threshold: int) -> None:
        if min(rows, num_banks, threshold) < 1:
            raise ValueError("rows, num_banks and threshold must be positive")
        self.rows = rows
        self.num_banks = num_banks
        self.threshold = threshold
        self.counters = np.zeros(rows, dtype=np.int32)
        self.sav = np.zeros(rows, dtype=np.int64)  # bitmask per entry
        self.sav_filtered = 0

    def observe(self, bank: int, row: int) -> list[MitigationDemand]:
        bit = 1 << bank
        if not self.sav[row] & bit:
            self.sav[row] |= bit
            self.sav_filtered += 1
            return []
        self.counters[row] += 1
        self.sav[row] = bit
        if self.counters[row] < self.threshold:
            return []
        self.counters[row] = 0
        self.sav[row] = 0
        return [MitigationDemand(bank=b, row=row)
                for b in range(self.num_banks)]

    def reset(self) -> None:
        self.counters[:] = 0
        self.sav[:] = 0

    def storage_bits(self) -> int:
        counter_bits = max(1, math.ceil(math.log2(self.threshold + 1)))
        return self.rows * (counter_bits + self.num_banks)


class AbacusPolicy(MitigationPolicy):
    """MC-side ABACuS with DRFMab gang mitigation.

    A triggered RowID is mitigated in every bank of the sub-channel with
    one explicit-sampling round followed by a DRFMab command — the same
    mitigation machinery DREAM-C uses, so Figure 17 compares trackers on
    equal mitigation footing.
    """

    def __init__(self, context: PolicyContext, t_rh: int) -> None:
        super().__init__()
        self.t_rh = t_rh
        self.threshold = tracker_threshold(t_rh)
        self.table = AbacusTable(context.rows_per_bank, context.num_banks,
                                 self.threshold)
        self._window_ps = context.timing.t_refw
        self._next_reset_ps = self._window_ps
        self.name = "abacus"

    def before_activate(self, bank: int, row: int, now_ps: int) -> bool:
        self.stats.activations_observed += 1
        if now_ps >= self._next_reset_ps:
            self.table.reset()
            self._next_reset_ps += self._window_ps
        demands = self.table.observe(bank, row)
        if demands:
            self.stats.selections += 1
            ready = now_ps
            for demand in demands:
                ready = max(ready, self.port.explicit_sample(
                    demand.bank, demand.row, now_ps))
            event = self.port.issue(Command.DRFM_AB, bank, ready)
            self.record_event(event)
        return False

    def summary(self) -> dict[str, float]:
        data = super().summary()
        data["sav_filtered"] = self.table.sav_filtered
        return data


@spec_factory
def abacus_factory(t_rh: int) -> PolicyFactory:
    """Factory for :class:`AbacusPolicy` (Figure 17 configurations)."""
    return lambda context: AbacusPolicy(context, t_rh)
