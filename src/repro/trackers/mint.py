"""MINT: Minimalist In-DRAM Tracker adapted to the MC [Qureshi+, MICRO'24].

MINT performs *windowed* selection: activations are grouped into windows
of ``W`` consecutive activations, one uniformly random slot per window is
selected, and the row activated in that slot is mitigated when the window
ends.  Per the paper (Appendix B), MINT with window ``W`` tolerates a
double-sided threshold of

    T_RH = 20 * W          (T_RH = 2000  ->  W = 100)

Security at the MC requires care: mitigating as soon as the selected slot
is reached would leak the selection through timing, letting the attacker
hammer the remaining slots with impunity.  The MC therefore *buffers* the
selected row (the SAR) and performs sampling + mitigation only at the end
of the window — both the coupled baseline and DREAM-R honour this.

Unlike PARA's IID selection, the distance between consecutive MINT
selections follows a triangular distribution on ``(0, 2W)`` centred at
``W`` — selections are well spaced, which is why MINT achieves much
higher RLP under DREAM-R (Section 4.7, Figure 11).
"""

from __future__ import annotations

import numpy as np

#: T_RH = THRESHOLD_PER_WINDOW * W for a double-sided pattern (Appendix B).
THRESHOLD_PER_WINDOW = 20


def window_for_threshold(t_rh: int) -> int:
    """Largest MINT window tolerating a double-sided ``t_rh``."""
    if t_rh < THRESHOLD_PER_WINDOW:
        raise ValueError(
            f"T_RH={t_rh} is below the minimum MINT can tolerate "
            f"({THRESHOLD_PER_WINDOW})")
    return t_rh // THRESHOLD_PER_WINDOW


def threshold_for_window(window: int) -> int:
    """Double-sided threshold tolerated by MINT with window ``window``."""
    if window < 1:
        raise ValueError("window must be positive")
    return THRESHOLD_PER_WINDOW * window


class MintWindow:
    """Per-bank MINT window state machine.

    Drives the CAN (current activation number) / SAN (selected activation
    number) logic: :meth:`observe` records one activation, capturing the
    row when the activation lands on the selected slot; :meth:`roll_over`
    closes an expired window, returning the buffered selection and drawing
    a fresh SAN for the next window.
    """

    def __init__(self, window: int, rng: np.random.Generator) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self._rng = rng
        self.can = 0
        self.san = int(rng.integers(window))
        self.selected_row: int | None = None
        self.windows_completed = 0

    @property
    def expired(self) -> bool:
        """Whether the current window has consumed all ``W`` slots."""
        return self.can >= self.window

    def observe(self, row: int) -> bool:
        """Record one activation; returns ``True`` if it was selected."""
        can = self.can
        if can >= self.window:
            raise RuntimeError("observe() on an expired window; "
                               "call roll_over() first")
        selected = can == self.san
        if selected:
            self.selected_row = row
        self.can = can + 1
        return selected

    def roll_over(self) -> int | None:
        """Close the expired window; returns its selected row (if any).

        A window can end without a selection only if it had fewer
        activations than ``W`` at reset time; in the steady state every
        window returns a row.
        """
        if not self.expired:
            raise RuntimeError("roll_over() on a window that has not expired")
        selected = self.selected_row
        self.selected_row = None
        self.can = 0
        self.san = int(self._rng.integers(self.window))
        self.windows_completed += 1
        return selected

    def inter_selection_distances(self, activations: int) -> np.ndarray:
        """Monte-Carlo gaps between consecutive selections (Figure 11).

        For MINT the gap between the selections of consecutive windows is
        ``W - SAN_k + SAN_{k+1}``: a triangular distribution on (0, 2W)
        — most gaps near ``W``, unlike PARA's exponential clustering.
        """
        windows = max(2, activations // self.window)
        sans = self._rng.integers(self.window, size=windows)
        positions = np.arange(windows) * self.window + sans
        return np.diff(positions)
