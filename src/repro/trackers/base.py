"""Shared vocabulary for activation trackers.

Counter-based trackers (Graphene, ABACuS, PRAC, DREAM-C) all follow the
same contract: observe a stream of ``(bank, row)`` activations and emit
mitigation demands when some counter crosses its tracker threshold.
:class:`CounterTracker` captures that contract so the pure data structures
can be unit- and property-tested independently of the simulator, and
:func:`tracker_threshold` centralises the paper's ``T_TH = T_RH / 2``
convention (the halving securely absorbs periodic table resets, following
Graphene).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


def tracker_threshold(t_rh: int) -> int:
    """Counter threshold for a target Rowhammer threshold.

    The paper sets the tracker threshold to half the Rowhammer threshold
    (Section 5.3) so that a row straddling a periodic table reset can
    never accumulate ``T_RH`` activations unmitigated.
    """
    if t_rh < 2:
        raise ValueError("t_rh must be at least 2")
    return t_rh // 2


@dataclass(frozen=True)
class MitigationDemand:
    """A tracker's request to mitigate one row."""

    bank: int
    row: int


class CounterTracker(abc.ABC):
    """A counting structure that turns activations into mitigation demands."""

    @abc.abstractmethod
    def observe(self, bank: int, row: int) -> list[MitigationDemand]:
        """Record one activation; return any rows that must be mitigated."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Periodic (refresh-window) state reset."""

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Total SRAM/CAM bits the structure occupies."""

    def storage_bytes(self) -> float:
        """Convenience: storage in bytes."""
        return self.storage_bits() / 8.0
