#!/usr/bin/env python3
"""Compare every mitigation design in the repository on one workload.

Sweeps the full tracker zoo — coupled PARA/MINT with NRR / DRFMsb /
DRFMab, DREAM-R, Graphene, ABACuS, DREAM-C (both groupings) and
PRAC/MOAT — over a memory-intensive workload and prints a league table
of slowdown, RLP, mitigation commands and tracker storage.

Run:  python examples/mitigation_comparison.py [workload] [t_rh]
"""

import sys

from repro import (Command, ComparisonResult, SimConfig, SystemConfig,
                   abacus_factory, build_traces, compare_storage,
                   coupled_mint_factory, coupled_para_factory,
                   dream_c_factory, dream_r_mint_factory,
                   dream_r_para_factory, graphene_factory, moat_factory,
                   run_simulation)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "bwaves"
    t_rh = int(sys.argv[2]) if len(sys.argv) > 2 else 1000

    system = SystemConfig.baseline(refs_per_window=32)
    prac_system = SystemConfig.prac(refs_per_window=32)
    sim = SimConfig(requests_per_core=10_000, seed=3)

    print(f"workload={workload}  T_RH={t_rh}")
    traces = build_traces(workload, system, sim)
    baseline = run_simulation(system, traces, sim)
    print(f"baseline: {baseline.describe()}\n")

    designs = [
        ("para + NRR", coupled_para_factory(t_rh, Command.NRR), system),
        ("para + DRFMsb", coupled_para_factory(t_rh, Command.DRFM_SB),
         system),
        ("para + DRFMab", coupled_para_factory(t_rh, Command.DRFM_AB),
         system),
        ("para + DREAM-R", dream_r_para_factory(t_rh), system),
        ("mint + DRFMsb", coupled_mint_factory(t_rh, Command.DRFM_SB),
         system),
        ("mint + DREAM-R", dream_r_mint_factory(t_rh), system),
        ("graphene", graphene_factory(t_rh), system),
        ("abacus", abacus_factory(t_rh), system),
        ("dream-c (assoc)", dream_c_factory(t_rh, randomized=False),
         system),
        ("dream-c (rand)", dream_c_factory(t_rh, randomized=True),
         system),
        ("prac (MOAT)", moat_factory(t_rh), prac_system),
    ]

    print(f"{'design':<16} {'slowdown':>9} {'rlp':>6} {'drfm':>6}")
    for name, factory, target_system in designs:
        run = run_simulation(target_system, traces, sim, factory, name)
        comparison = ComparisonResult(baseline, run)
        print(f"{name:<16} {comparison.slowdown_percent:8.2f}% "
              f"{run.average_rlp:6.2f} {run.mitigation_commands:6d}")

    if t_rh >= 125:
        storage = compare_storage(t_rh)
        print()
        print(f"full-size tracker storage at T_RH={t_rh} (KB per bank):")
        print(f"  dream-c  {storage.dream_c_kb:8.2f}")
        print(f"  graphene {storage.graphene_kb:8.2f} "
              f"({storage.graphene_ratio:.1f}x)")
        print(f"  abacus   {storage.abacus_kb:8.2f} "
              f"({storage.abacus_ratio:.1f}x)")


if __name__ == "__main__":
    main()
