#!/usr/bin/env python3
"""Explore tracker storage and DoS bounds across Rowhammer thresholds.

Regenerates the storage story of the paper (Tables 1 and 6, the Figure 17
storage axis) for any threshold range, plus the Section 5.5 worst-case
DoS analysis — all analytic, instant to run.

Run:  python examples/storage_explorer.py
"""

from repro import compare_storage, dream_c_config, revised_parameters
from repro.analysis.dos import analyze_dos
from repro.core.storage import vertical_factor

THRESHOLDS = (125, 250, 500, 1000)


def main() -> None:
    print("DREAM-C configurations (the paper's Table 6):")
    print(f"{'T_RH':>6} {'gang':>6} {'#DRFMab':>8} {'DCT entries':>12} "
          f"{'SRAM/bank':>10}")
    for t_rh in THRESHOLDS:
        config = dream_c_config(t_rh)
        print(f"{t_rh:>6} {config.gang_size:>6} "
              f"{config.drfms_per_mitigation:>8} "
              f"{config.dct_entries:>12} "
              f"{config.sram_kb_per_bank():>8.2f}KB")

    print()
    print("storage comparison, KB per bank at full system size:")
    print(f"{'T_RH':>6} {'DREAM-C':>9} {'Graphene':>9} {'ABACuS':>9} "
          f"{'vs Graphene':>12} {'vs ABACuS':>10}")
    for t_rh in THRESHOLDS:
        cmp = compare_storage(t_rh)
        print(f"{t_rh:>6} {cmp.dream_c_kb:>9.2f} {cmp.graphene_kb:>9.2f} "
              f"{cmp.abacus_kb:>9.2f} {cmp.graphene_ratio:>11.1f}x "
              f"{cmp.abacus_ratio:>9.1f}x")

    print()
    print("worst-case DoS bound of DREAM-C (Section 5.5):")
    for t_rh in THRESHOLDS:
        print(" ", analyze_dos(t_rh,
                               vertical=vertical_factor(t_rh)).describe())

    print()
    print("DREAM-R tracker re-architecting (Table 4):")
    for t_rh in (1000, 2000, 4000):
        print(" ", revised_parameters(t_rh).describe())


if __name__ == "__main__":
    main()
