#!/usr/bin/env python3
"""Full trace pipeline: raw accesses -> LLC -> miss trace -> simulation.

The performance experiments generate LLC-miss streams directly (they are
calibrated at the miss level from the paper's Table 3 data), but the
repository also ships the full substrate: this example builds a raw
access stream with cache-friendly reuse, filters it through the 8 MB
shared LLC, decodes the misses through the MOP4 mapper, and runs the
resulting trace through the memory-system simulator with DREAM-C
protection — the same path a trace-driven frontend would use.

Run:  python examples/trace_pipeline.py
"""

import numpy as np

from repro import (ComparisonResult, MemoryTrace, MOPMapper, SimConfig,
                   SystemConfig, dream_c_factory, run_simulation)
from repro.cpu.llc import SetAssociativeCache


def synthesize_raw_accesses(count: int, seed: int) -> np.ndarray:
    """A raw line-address stream with heavy short-term reuse.

    80% of accesses revisit a small hot window (these will hit in the
    LLC); 20% sweep a large cold region (these will miss).
    """
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, 4_096, size=count)          # 256 KB hot set
    cold = rng.integers(0, 2_000_000, size=count)     # ~128 MB cold set
    pick_hot = rng.random(count) < 0.8
    return np.where(pick_hot, hot, 4_096 + cold)


def main() -> None:
    system = SystemConfig.baseline(refs_per_window=32, num_cores=2)
    sim = SimConfig(requests_per_core=4_000, seed=5)
    mapper = MOPMapper(system.organization)

    traces = []
    for core in range(system.num_cores):
        raw = synthesize_raw_accesses(80_000, seed=5 + core)
        llc = SetAssociativeCache()  # 8 MB, 16-way, LRU (Table 2)
        misses = np.array(llc.filter_misses(list(raw)), dtype=np.int64)
        misses %= mapper.total_lines
        print(f"core {core}: {llc.stats.accesses} accesses -> "
              f"{llc.stats.misses} LLC misses "
              f"(miss rate {llc.stats.miss_rate * 100:.1f}%, "
              f"MPKI {llc.stats.mpki(instructions=40_000_000):.2f} at an "
              f"assumed 500 accesses/kilo-instruction)")
        gaps = np.full(len(misses), 60_000, dtype=np.int64)  # 60 ns think
        traces.append(MemoryTrace.from_lines(f"pipeline-core{core}",
                                             misses, gaps, mapper))

    baseline = run_simulation(system, traces, sim)
    protected = run_simulation(system, traces, sim,
                               dream_c_factory(t_rh=500), "dream-c")
    comparison = ComparisonResult(baseline, protected)
    print()
    print(f"baseline : {baseline.describe()}")
    print(f"dream-c  : {protected.describe()}")
    print(f"slowdown : {comparison.slowdown_percent:.2f}%")


if __name__ == "__main__":
    main()
