#!/usr/bin/env python3
"""Attack a set of defenses and measure unmitigated exposure.

Drives classic Rowhammer patterns (single-sided, double-sided, the
circular (ABCD)^N pattern and the RMAQ-abuse pattern from Section 6.2)
against real mitigation policies and reports the largest activation
streak any row accumulated without mitigation — the quantity the paper's
security analyses bound.

Run:  python examples/attack_analysis.py
"""

from repro.analysis.harness import AttackHarness
from repro.core.dream_c import dream_c_factory
from repro.core.dream_r import dream_r_mint_factory, dream_r_para_factory
from repro.mc.mitigation import coupled_mint_factory, coupled_para_factory
from repro.mc.policy import no_mitigation_factory
from repro.workloads.attacks import circular, rmaq_abuse, single_sided

T_RH = 2000


def hammer(name, factory, pattern, bank=0, seed=23):
    harness = AttackHarness(factory, seed=seed)
    result = harness.run(pattern, bank=bank)
    print(f"  {name:<22} peak unmitigated streak = "
          f"{result.max_unmitigated:5d}  "
          f"(mitigation commands: {result.mitigations})")
    return result


def main() -> None:
    print(f"single-sided hammer, 12K activations, T_RH={T_RH} "
          "(double-sided) -> single-sided budget ~{0}".format(2 * T_RH))
    pattern = single_sided(7, 12_000)
    hammer("unprotected", no_mitigation_factory(), pattern)
    hammer("para (coupled)", coupled_para_factory(T_RH), pattern)
    hammer("para (DREAM-R+ATM)", dream_r_para_factory(T_RH), pattern)
    hammer("mint (coupled)", coupled_mint_factory(T_RH), pattern)
    hammer("mint (DREAM-R+ATM)", dream_r_mint_factory(T_RH), pattern)
    hammer("dream-c (T_RH=500)", dream_c_factory(500), pattern)

    print()
    print("circular (ABCD)^N pattern over W=100 rows, 30K activations "
          "(most stressful for MINT):")
    circ = circular(list(range(100)), 30_000)
    hammer("mint (coupled)", coupled_mint_factory(T_RH), circ)
    hammer("mint (DREAM-R+ATM)", dream_r_mint_factory(T_RH), circ)

    print()
    print("RMAQ-abuse pattern (Section 6.2): force selection, then land "
          "150 'free' activations")
    print("while the rate-limit filter suppresses re-sampling "
          "(T_RH=500, W=24):")
    rows = list(range(24))
    abuse = rmaq_abuse(rows, extra_on_target=150, rounds=6)
    plain = hammer("mint DREAM-R (no limit)", dream_r_mint_factory(500),
                   abuse)
    limited = hammer("mint DREAM-R (+RMAQ)",
                     dream_r_mint_factory(500, rate_limited=True), abuse)
    gained = limited.max_unmitigated - plain.max_unmitigated
    print(f"  -> the rate limit lets the attacker gain ~{gained} extra "
          "activations on the target,")
    print("     matching the paper's Table 7 analysis "
          "(bounded by 2*tREFI * 75 = 150 single-sided).")


if __name__ == "__main__":
    main()
