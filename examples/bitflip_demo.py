#!/usr/bin/env python3
"""End-to-end bit-flip demonstration on the disturbance model.

Runs real attack patterns against real defenses with the victim-
disturbance model attached, and reports actual Rowhammer *outcomes*
(bit flips), not just activation counts:

1. an undefended device flips under a double-sided hammer;
2. in-DRAM TRR stops the naive hammer but the TRRespass-style decoy
   pattern flips anyway — the paper's motivation for MC-side defense;
3. DREAM-R and DREAM-C stop every pattern, including Blacksmith-style
   non-uniform schedules.

Run:  python examples/bitflip_demo.py
"""

from repro.analysis.harness import AttackHarness
from repro.core.dream_c import dream_c_factory
from repro.core.dream_r import dream_r_mint_factory
from repro.dram.disturbance import DisturbanceConfig, DisturbanceModel
from repro.mc.policy import no_mitigation_factory
from repro.trackers.trr import trr_factory
from repro.workloads.attacks import blacksmith, double_sided

#: The device flips when a victim accumulates this much disturbance
#: (units: one per neighbour activation — a double-sided pair adds 2 per
#: round, so this corresponds to a double-sided T_RH of ~600).
DEVICE_THRESHOLD = 1200


def attack(label, factory, pattern, seed=47):
    harness = AttackHarness(factory, seed=seed)
    model = DisturbanceModel(DisturbanceConfig(t_rh=DEVICE_THRESHOLD),
                             rows_per_bank=512)
    harness.attach_disturbance(model)
    harness.run(pattern, bank=0)
    verdict = (f"FLIPPED ({len(model.flips)} flips, first victim row "
               f"{model.flips[0].row})" if model.flipped else "protected")
    print(f"  {label:<28} -> {verdict}")
    return model


def decoy_pattern(rounds=4000):
    """TRRespass-style: decoys own the 4-entry TRR table."""
    pattern = []
    for _ in range(rounds):
        for decoy in (100, 200, 300, 400):
            pattern += [(0, decoy)] * 3
        for target in (10, 12):
            pattern += [(0, target)] * 2
    return [row for _, row in pattern]


def main() -> None:
    hammer = double_sided(10, 12, 16_000)
    print(f"device flips at {DEVICE_THRESHOLD} accumulated disturbances\n")

    print("double-sided hammer (16K activations):")
    attack("no defense", no_mitigation_factory(), hammer)
    attack("in-DRAM TRR", trr_factory(entries=4), hammer)
    attack("MINT + DREAM-R (T=500)", dream_r_mint_factory(500), hammer)
    attack("DREAM-C (T=500)", dream_c_factory(500), hammer)

    print("\nTRRespass decoy pattern (decoys shadow the targets):")
    decoys = decoy_pattern()
    attack("in-DRAM TRR", trr_factory(entries=4), decoys)
    attack("MINT + DREAM-R (T=500)", dream_r_mint_factory(500), decoys)

    print("\nBlacksmith non-uniform schedule (3 aggressors):")
    smith = blacksmith([10, 12, 14], intensities=[8, 4, 1],
                       phase_offsets=[0, 3, 9], activations=20_000)
    attack("no defense", no_mitigation_factory(), smith)
    attack("in-DRAM TRR", trr_factory(entries=4), smith)
    attack("DREAM-C (T=500)", dream_c_factory(500), smith)

    print("\nDREAM's MC-side tracking bounds every pattern; the in-DRAM")
    print("sampler falls to patterns engineered around its table — the")
    print("paper's case for DRFM-based MC-side mitigation.")


if __name__ == "__main__":
    main()
