#!/usr/bin/env python3
"""Quickstart: protect a workload with DREAM-R and measure the cost.

Builds a calibrated synthetic workload (mcf from the paper's Table 3),
runs it unprotected, then with the coupled DRFMsb baseline and with
DREAM-R (MINT), and reports slowdown and realised RLP — a miniature
version of the paper's Figure 9 for a single workload.

Run:  python examples/quickstart.py
"""

from repro import (Command, ComparisonResult, SimConfig, SystemConfig,
                   build_traces, coupled_mint_factory,
                   dream_r_mint_factory, run_simulation)

T_RH = 2000  # Rowhammer threshold the defense must tolerate


def main() -> None:
    # A scaled-down version of the paper's Table 2 system: 8 cores, one
    # DDR5 channel, two 32-bank sub-channels, MOP4 mapping.  The refresh
    # window is shortened 256x (with rows scaled to match) so the run
    # finishes in seconds; see DESIGN.md for why this preserves shapes.
    system = SystemConfig.baseline(refs_per_window=32)
    sim = SimConfig(requests_per_core=10_000, seed=1)

    print("generating calibrated traces for 'mcf' (8-core rate mode)...")
    traces = build_traces("mcf", system, sim)

    baseline = run_simulation(system, traces, sim)
    print(f"unprotected: {baseline.describe()}")

    coupled = run_simulation(system, traces, sim,
                             coupled_mint_factory(T_RH, Command.DRFM_SB),
                             "mint-drfmsb")
    dream = run_simulation(system, traces, sim,
                           dream_r_mint_factory(T_RH), "mint-dream-r")

    for run in (coupled, dream):
        comparison = ComparisonResult(baseline, run)
        print(f"{run.policy:>14s}: slowdown = "
              f"{comparison.slowdown_percent:5.2f}%  "
              f"RLP = {run.average_rlp:4.2f}  "
              f"DRFM commands = {run.mitigation_commands}")

    print()
    print("DREAM-R's delayed DRFM lets the other banks of the DRFMsb "
          "group fill their DARs,")
    print("so each command mitigates several rows: fewer commands, "
          "fewer stalls, lower slowdown.")


if __name__ == "__main__":
    main()
