"""Setup shim.

The environment's setuptools lacks the ``wheel`` package, so PEP-660
editable installs (which build a wheel) fail; this shim lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
