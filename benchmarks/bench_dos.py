"""Benchmark: DREAM-C worst-case DoS factor (Section 5.5).

Regenerates the experiment through the shared harness; quick mode by
default, ``REPRO_FULL=1`` for the full 22-workload sweep.  The rendered
table lands in ``benchmarks/results/dos.txt``.
"""

import pytest

from repro.experiments import dos


@pytest.mark.benchmark(group="dos")
def test_dos(experiment_runner):
    result = experiment_runner("dos", dos.run)
    for r in result.rows:
        assert r["analytic_factor"] < 5.0
        assert r["measured_factor"] < 5.0
