"""Benchmark-history bookkeeping for the regression observatory.

Thin, runnable wrapper over :mod:`repro.analysis.regression`: it reads
the committed benchmark snapshots (``results/BENCH_engine.json`` and
``results/BENCH_obs.json``), flattens them into ``metric -> {best,
median}`` figures, and either

* ``record`` — appends one timestamped entry to
  ``results/BENCH_history.jsonl`` (run after refreshing the snapshots
  on a quiet machine; the history is the regression baseline and
  ratchets element-wise upward), or
* ``check`` — compares the current snapshots against the best figures
  ever recorded and exits non-zero when any metric dropped by more
  than the noise threshold on **both** the best and the median figure.

``repro bench record`` / ``repro bench check`` expose the same two
operations through the installed CLI; this module exists so the
benchmarks directory is self-contained::

    PYTHONPATH=src python benchmarks/history.py record --note "..."
    PYTHONPATH=src python benchmarks/history.py check --threshold 20
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.analysis import regression

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Record or check the benchmark-regression history.")
    parser.add_argument("action", choices=("record", "check"))
    parser.add_argument("--results-dir", default=str(RESULTS_DIR),
                        help="directory holding the BENCH_* snapshots")
    parser.add_argument("--history", default=None,
                        help="history file (default: "
                             "<results-dir>/BENCH_history.jsonl)")
    parser.add_argument("--threshold", type=float,
                        default=regression.DEFAULT_THRESHOLD_PCT,
                        help="regression threshold in percent")
    parser.add_argument("--note", default="",
                        help="free-form note stored with 'record'")
    args = parser.parse_args(argv)

    history = args.history or str(
        pathlib.Path(args.results_dir) / regression.HISTORY_FILE)

    if args.action == "record":
        metrics = regression.collect_metrics(args.results_dir)
        if not metrics:
            print(f"error: no benchmark snapshots in {args.results_dir}",
                  file=sys.stderr)
            return 2
        entry = regression.append_history(history, metrics,
                                          timestamp=time.time(),
                                          note=args.note)
        print(f"recorded {len(metrics)} metrics to {history} "
              f"(entry ts {entry['ts']:.0f})")
        return 0

    try:
        report = regression.run_check(args.results_dir,
                                      history_path=history,
                                      threshold_pct=args.threshold)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.describe())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
