"""Benchmark: DREAM-R vs NRR vs DRFMsb (Figure 9).

Regenerates the experiment through the shared harness; quick mode by
default, ``REPRO_FULL=1`` for the full 22-workload sweep.  The rendered
table lands in ``benchmarks/results/fig9.txt``.
"""

import pytest

from repro.experiments import fig9


@pytest.mark.benchmark(group="fig9")
def test_fig9(experiment_runner):
    result = experiment_runner("fig9", fig9.run)
    avg = result.row_by(workload="AVERAGE")
    assert avg["para-dream-r"] < avg["para-drfmsb"]
    assert avg["mint-dream-r"] < avg["mint-drfmsb"]
    assert avg["mint-dream-r"] < avg["mint-nrr"]
