"""Ablation benchmark: ATM threshold sweep (see repro.experiments.ablations)."""

import pytest

from repro.experiments import ablations


@pytest.mark.benchmark(group="ablation_atm")
def test_ablation_atm(experiment_runner):
    result = experiment_runner("ablation_atm", ablations.run_atm)
    slow = {r["design"]: r["avg_slowdown"] for r in result.rows}
    # ATM is essentially free for benign workloads (its trigger needs a
    # row hammered while awaiting DRFM): the whole sweep stays within a
    # narrow band, including the no-ATM revised-probability variant.
    values = list(slow.values())
    assert max(values) - min(values) < 2.5
