"""Benchmark: DREAM-R threshold sensitivity (Figure 10).

Regenerates the experiment through the shared harness; quick mode by
default, ``REPRO_FULL=1`` for the full 22-workload sweep.  The rendered
table lands in ``benchmarks/results/fig10.txt``.
"""

import pytest

from repro.experiments import fig10


@pytest.mark.benchmark(group="fig10")
def test_fig10(experiment_runner):
    result = experiment_runner("fig10", fig10.run)
    avg = result.row_by(workload="AVERAGE")
    # Slowdown falls as the threshold rises, for both trackers.
    assert avg["para-dream-r-500"] > avg["para-dream-r-4000"]
    assert avg["mint-dream-r-500"] > avg["mint-dream-r-4000"]
    # MINT stays below PARA at every threshold.
    for t in (500, 1000, 2000, 4000):
        assert avg[f"mint-dream-r-{t}"] <= avg[f"para-dream-r-{t}"] + 1.0
