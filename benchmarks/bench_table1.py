"""Benchmark: Graphene storage vs threshold (Table 1).

Regenerates the experiment through the shared harness; quick mode by
default, ``REPRO_FULL=1`` for the full 22-workload sweep.  The rendered
table lands in ``benchmarks/results/table1.txt``.
"""

import pytest

from repro.experiments import table1


@pytest.mark.benchmark(group="table1")
def test_table1(experiment_runner):
    result = experiment_runner("table1", table1.run)
    row = {r["t_rh"]: r for r in result.rows}
    assert row[500]["kb_per_bank"] == pytest.approx(7.9, abs=0.2)
    assert row[250]["entries"] == 4800
