"""Ablation benchmark: core-model robustness (see repro.experiments.ablations)."""

import pytest

from repro.experiments import ablations


@pytest.mark.benchmark(group="ablation_mlp")
def test_ablation_mlp(experiment_runner):
    result = experiment_runner("ablation_mlp", ablations.run_mlp)
    for r in result.rows:
        assert r["para_dream_r"] < r["para_drfmsb"]
