"""Benchmark: telemetry overhead on the simulation hot path.

Runs one fixed, fully mitigated cell (mcf under coupled MINT + DRFMsb —
a mitigation-heavy configuration, so journal/trace recording is
exercised, not idle) in three telemetry configurations:

* **off** — no telemetry at all (the default path: one pointer check);
* **on** — in-memory journal + timeline sampling + metrics;
* **on+trace** — the above plus the bounded DRFM event trace;
* **on+spans** — "on" plus the hierarchical span tracer (engine spans
  bracket the event loop, so the per-event cost must stay nil).

Two measurement rules keep the comparison honest on a noisy 1-core CI
box (this benchmark used to report "on+trace" as *cheaper* than "on",
which is impossible in expectation):

* **warmup** — each configuration runs one untimed round first, so
  first-touch effects (trace-column materialisation, allocator warm-up,
  branch caches) do not land on whichever config happened to run first;
* **interleaving** — the timed rounds cycle off -> on -> on+trace
  rather than measuring each config's rounds back-to-back, so slow
  machine-speed drift (CPU contention on shared runners moves on a
  multi-second timescale) hits every configuration equally.

Each configuration reports the **best-of-7** engine events/sec (the
minimum wall time is the cleanest estimate of the code's cost under
benchmark noise) and the **median-of-7** (the stability check — a
single quiet round cannot move it).  Results fold into
``results/BENCH_obs.json`` together with per-config ``overhead_pct``
(best-based) and ``median_overhead_pct`` relative to the off baseline —
the telemetry-on budget is <= 10 % events/s, tracked in the snapshot
rather than asserted inline (wall clock timing is too noisy for a hard
CI gate).
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time

import pytest

from repro.mc.mitigation import coupled_mint_factory
from repro.obs import Telemetry
from repro.sim.config import SimConfig, SystemConfig
from repro.workloads import build_traces

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OBS_SNAPSHOT = RESULTS_DIR / "BENCH_obs.json"

ROUNDS = 7
REQUESTS = 2_000
WORKLOAD = "mcf"
CONFIGS = ("off", "on", "on+trace", "on+spans")


def _telemetry(config: str) -> Telemetry | None:
    if config == "off":
        return None
    return Telemetry(journal_memory=True, sample_every_refi=8,
                     trace=(config == "on+trace"),
                     spans=(config == "on+spans"))


def _measure_all() -> dict[str, dict]:
    """Warmup + interleaved best/median-of-ROUNDS for every config."""
    from repro.sim.runner import run_simulation

    system = SystemConfig.baseline(refs_per_window=32)
    sim = SimConfig(requests_per_core=REQUESTS, seed=7)
    traces = build_traces(WORKLOAD, system, sim)
    factory = coupled_mint_factory(500)

    def one_run(config: str) -> tuple[float, object]:
        telemetry = _telemetry(config)
        started = time.perf_counter()
        result = run_simulation(system, traces, sim, factory, "mint",
                                telemetry=telemetry)
        return time.perf_counter() - started, result

    for config in CONFIGS:  # untimed warmup, one round per config
        one_run(config)
    rates: dict[str, list[float]] = {config: [] for config in CONFIGS}
    events = 0
    mitigations = 0
    for _ in range(ROUNDS):
        for config in CONFIGS:
            wall_s, result = one_run(config)
            events = result.requests_completed
            mitigations = result.mitigation_commands
            rates[config].append(events / wall_s)
    assert mitigations > 0, "benchmark cell never mitigated"
    return {config: {
        "events_per_sec": round(max(samples)),
        "median_events_per_sec": round(statistics.median(samples)),
        "events": events, "mitigations": mitigations,
        "rounds": ROUNDS,
    } for config, samples in rates.items()}


def _update_obs_snapshot(entries: dict[str, dict]) -> None:
    """Read-modify-write ``BENCH_obs.json`` (mirrors BENCH_sweep.json)."""
    snapshot: dict = {"configs": {}}
    try:
        snapshot = json.loads(OBS_SNAPSHOT.read_text())
    except (OSError, ValueError):
        pass
    configs = snapshot.setdefault("configs", {})
    configs.update(entries)
    baseline = configs.get("off", {})
    best_base = baseline.get("events_per_sec")
    median_base = baseline.get("median_events_per_sec")
    for name, config_entry in configs.items():
        if best_base:
            config_entry["overhead_pct"] = round(
                100.0 * (best_base - config_entry["events_per_sec"])
                / best_base, 1)
        if median_base and "median_events_per_sec" in config_entry:
            config_entry["median_overhead_pct"] = round(
                100.0 * (median_base
                         - config_entry["median_events_per_sec"])
                / median_base, 1)
    snapshot["workload"] = WORKLOAD
    snapshot["requests_per_core"] = REQUESTS
    RESULTS_DIR.mkdir(exist_ok=True)
    OBS_SNAPSHOT.write_text(json.dumps(snapshot, indent=2,
                                       sort_keys=True) + "\n")


@pytest.mark.benchmark(group="obs")
def test_obs_overhead(benchmark):
    entries = benchmark.pedantic(_measure_all, rounds=1, iterations=1)
    for config, entry in entries.items():
        benchmark.extra_info[f"{config}_events_per_sec"] = \
            entry["events_per_sec"]
        benchmark.extra_info[f"{config}_median_events_per_sec"] = \
            entry["median_events_per_sec"]
    _update_obs_snapshot(entries)
    print()
    for config, entry in entries.items():
        print(f"[obs] {config}: {entry['events_per_sec']:,} events/s "
              f"best, {entry['median_events_per_sec']:,} median "
              f"(of {ROUNDS}, interleaved)")
