"""Benchmark: telemetry overhead on the simulation hot path.

Runs one fixed, fully mitigated cell (mcf under coupled MINT + DRFMsb —
a mitigation-heavy configuration, so journal/trace recording is
exercised, not idle) in three telemetry configurations:

* **off** — no telemetry at all (the default path: one pointer check);
* **on** — in-memory journal + timeline sampling + metrics;
* **on+trace** — the above plus the bounded DRFM event trace.

Each configuration reports the **best-of-7** engine events/sec (best,
not mean: the minimum wall time is the cleanest estimate of the code's
cost under benchmark noise).  Results fold into
``results/BENCH_obs.json`` together with per-config ``overhead_pct``
relative to the off baseline — the telemetry-on budget is <= 10 %
events/s, tracked in the snapshot rather than asserted inline (wall
clock timing is too noisy for a hard CI gate).
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.mc.mitigation import coupled_mint_factory
from repro.obs import Telemetry
from repro.sim.config import SimConfig, SystemConfig
from repro.workloads import build_traces

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OBS_SNAPSHOT = RESULTS_DIR / "BENCH_obs.json"

ROUNDS = 7
REQUESTS = 2_000
WORKLOAD = "mcf"


def _telemetry(config: str) -> Telemetry | None:
    if config == "off":
        return None
    return Telemetry(journal_memory=True, sample_every_refi=8,
                     trace=(config == "on+trace"))


def _measure(config: str) -> dict:
    """Best-of-ROUNDS events/sec for one telemetry configuration."""
    from repro.sim.runner import run_simulation

    system = SystemConfig.baseline(refs_per_window=32)
    sim = SimConfig(requests_per_core=REQUESTS, seed=7)
    traces = build_traces(WORKLOAD, system, sim)
    factory = coupled_mint_factory(500)

    best_events_per_sec = 0.0
    events = 0
    mitigations = 0
    for _ in range(ROUNDS):
        telemetry = _telemetry(config)
        started = time.perf_counter()
        result = run_simulation(system, traces, sim, factory, "mint",
                                telemetry=telemetry)
        wall_s = time.perf_counter() - started
        events = result.requests_completed
        mitigations = result.mitigation_commands
        best_events_per_sec = max(best_events_per_sec, events / wall_s)
    assert mitigations > 0, "benchmark cell never mitigated"
    return {"events_per_sec": round(best_events_per_sec),
            "events": events, "mitigations": mitigations,
            "rounds": ROUNDS}


def _update_obs_snapshot(config: str, entry: dict) -> None:
    """Read-modify-write ``BENCH_obs.json`` (mirrors BENCH_sweep.json)."""
    snapshot: dict = {"configs": {}}
    try:
        snapshot = json.loads(OBS_SNAPSHOT.read_text())
    except (OSError, ValueError):
        pass
    configs = snapshot.setdefault("configs", {})
    configs[config] = entry
    baseline = configs.get("off", {}).get("events_per_sec")
    if baseline:
        for name, config_entry in configs.items():
            rate = config_entry["events_per_sec"]
            config_entry["overhead_pct"] = \
                round(100.0 * (baseline - rate) / baseline, 1)
    snapshot["workload"] = WORKLOAD
    snapshot["requests_per_core"] = REQUESTS
    RESULTS_DIR.mkdir(exist_ok=True)
    OBS_SNAPSHOT.write_text(json.dumps(snapshot, indent=2,
                                       sort_keys=True) + "\n")


@pytest.mark.benchmark(group="obs")
@pytest.mark.parametrize("config", ["off", "on", "on+trace"])
def test_obs_overhead(benchmark, config):
    entry = benchmark.pedantic(_measure, args=(config,),
                               rounds=1, iterations=1)
    benchmark.extra_info["config"] = config
    benchmark.extra_info["events_per_sec"] = entry["events_per_sec"]
    _update_obs_snapshot(config, entry)
    print(f"\n[obs] {config}: {entry['events_per_sec']:,} events/s "
          f"(best of {ROUNDS})")
