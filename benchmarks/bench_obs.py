"""Benchmark: telemetry overhead on the simulation hot path.

Runs one fixed, fully mitigated cell (mcf under coupled MINT + DRFMsb —
a mitigation-heavy configuration, so journal/trace recording is
exercised, not idle) in three telemetry configurations:

* **off** — no telemetry at all (the default path: one pointer check);
* **on** — in-memory journal + timeline sampling + metrics;
* **on+trace** — the above plus the bounded DRFM event trace;
* **on+spans** — "on" plus the hierarchical span tracer (engine spans
  bracket the event loop, so the per-event cost must stay nil);
* **on+export** — "on" plus the service observability plane exercised
  concurrently: a background scraper renders the Prometheus exposition
  from the live telemetry registry every 50 ms (a /v1/metrics scrape)
  and appends one access-log record per scrape.  The plane reads
  metrics off to the side of the hot path, so its budget is the
  tightest: the *increment over "on"* (recorded in the snapshot as
  ``export_increment_pct``) must stay <= 2 % events/s.

Two measurement rules keep the comparison honest on a noisy 1-core CI
box (this benchmark used to report "on+trace" as *cheaper* than "on",
which is impossible in expectation):

* **warmup** — each configuration runs one untimed round first, so
  first-touch effects (trace-column materialisation, allocator warm-up,
  branch caches) do not land on whichever config happened to run first;
* **interleaving** — the timed rounds cycle off -> on -> on+trace
  rather than measuring each config's rounds back-to-back, so slow
  machine-speed drift (CPU contention on shared runners moves on a
  multi-second timescale) hits every configuration equally.

Each configuration reports the **best-of-7** engine events/sec (the
minimum wall time is the cleanest estimate of the code's cost under
benchmark noise) and the **median-of-7** (the stability check — a
single quiet round cannot move it).  Results fold into
``results/BENCH_obs.json`` together with per-config ``overhead_pct``
(best-based) and ``median_overhead_pct`` relative to the off baseline —
the telemetry-on budget is <= 10 % events/s, tracked in the snapshot
rather than asserted inline (wall clock timing is too noisy for a hard
CI gate).
"""

from __future__ import annotations

import json
import pathlib
import statistics
import tempfile
import threading
import time

import pytest

from repro.mc.mitigation import coupled_mint_factory
from repro.obs import Telemetry
from repro.obs.exporter import Exposition, collect_registry
from repro.service.server import AccessLog
from repro.sim.config import SimConfig, SystemConfig
from repro.workloads import build_traces

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OBS_SNAPSHOT = RESULTS_DIR / "BENCH_obs.json"

ROUNDS = 7
REQUESTS = 2_000
WORKLOAD = "mcf"
CONFIGS = ("off", "on", "on+trace", "on+spans", "on+export")

#: Scrape cadence for the ``on+export`` configuration — far more
#: aggressive than a real Prometheus (15 s default) so the measured
#: overhead is an upper bound.
SCRAPE_INTERVAL_S = 0.05


def _telemetry(config: str) -> Telemetry | None:
    if config == "off":
        return None
    return Telemetry(journal_memory=True, sample_every_refi=8,
                     trace=(config == "on+trace"),
                     spans=(config == "on+spans"))


class _ExportScraper:
    """The service plane, concentrated: every ``interval_s`` renders
    the exposition from the live registry and appends one access-log
    record — exactly what ``GET /v1/metrics`` costs the hot path."""

    def __init__(self, registry, access_log: AccessLog,
                 interval_s: float = SCRAPE_INTERVAL_S) -> None:
        self.registry = registry
        self.access_log = access_log
        self.interval_s = interval_s
        self.scrapes = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def scrape(self) -> None:
        exposition = Exposition()
        collect_registry(exposition, self.registry)
        text = exposition.render()
        self.access_log.record("GET", "/v1/metrics", 200,
                               duration_us=0, job=None,
                               response_bytes=len(text))
        self.scrapes += 1

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.scrape()

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join()
        self.scrape()  # final post-run scrape, like a last poll


def _measure_all() -> dict[str, dict]:
    """Warmup + interleaved best/median-of-ROUNDS for every config."""
    from repro.sim.runner import run_simulation

    system = SystemConfig.baseline(refs_per_window=32)
    sim = SimConfig(requests_per_core=REQUESTS, seed=7)
    traces = build_traces(WORKLOAD, system, sim)
    factory = coupled_mint_factory(500)
    log_dir = tempfile.mkdtemp(prefix="bench-obs-")
    access_log = AccessLog(str(pathlib.Path(log_dir) / "access.jsonl"))

    def one_run(config: str) -> tuple[float, object]:
        telemetry = _telemetry(config)
        scraper = None
        if config == "on+export":
            scraper = _ExportScraper(telemetry.registry, access_log)
            scraper.start()
        started = time.perf_counter()
        try:
            result = run_simulation(system, traces, sim, factory,
                                    "mint", telemetry=telemetry)
            wall_s = time.perf_counter() - started
        finally:
            if scraper is not None:
                scraper.stop()
        return wall_s, result

    for config in CONFIGS:  # untimed warmup, one round per config
        one_run(config)
    rates: dict[str, list[float]] = {config: [] for config in CONFIGS}
    events = 0
    mitigations = 0
    for _ in range(ROUNDS):
        for config in CONFIGS:
            wall_s, result = one_run(config)
            events = result.requests_completed
            mitigations = result.mitigation_commands
            rates[config].append(events / wall_s)
    access_log.close()
    assert mitigations > 0, "benchmark cell never mitigated"
    assert access_log.written > 0, "export scraper never scraped"
    return {config: {
        "events_per_sec": round(max(samples)),
        "median_events_per_sec": round(statistics.median(samples)),
        "events": events, "mitigations": mitigations,
        "rounds": ROUNDS,
    } for config, samples in rates.items()}


def _update_obs_snapshot(entries: dict[str, dict]) -> None:
    """Read-modify-write ``BENCH_obs.json`` (mirrors BENCH_sweep.json)."""
    snapshot: dict = {"configs": {}}
    try:
        snapshot = json.loads(OBS_SNAPSHOT.read_text())
    except (OSError, ValueError):
        pass
    configs = snapshot.setdefault("configs", {})
    configs.update(entries)
    baseline = configs.get("off", {})
    best_base = baseline.get("events_per_sec")
    median_base = baseline.get("median_events_per_sec")
    for name, config_entry in configs.items():
        if best_base:
            config_entry["overhead_pct"] = round(
                100.0 * (best_base - config_entry["events_per_sec"])
                / best_base, 1)
        if median_base and "median_events_per_sec" in config_entry:
            config_entry["median_overhead_pct"] = round(
                100.0 * (median_base
                         - config_entry["median_events_per_sec"])
                / median_base, 1)
    # The plane's own cost: on+export relative to plain "on" (the
    # exporter + access log increment, budget <= 2 %).  Best-based,
    # like overhead_pct — the minimum is the cleanest cost estimate.
    on = configs.get("on", {}).get("events_per_sec")
    export = configs.get("on+export", {}).get("events_per_sec")
    if on and export:
        snapshot["export_increment_pct"] = round(
            100.0 * (on - export) / on, 1)
    snapshot["workload"] = WORKLOAD
    snapshot["requests_per_core"] = REQUESTS
    RESULTS_DIR.mkdir(exist_ok=True)
    OBS_SNAPSHOT.write_text(json.dumps(snapshot, indent=2,
                                       sort_keys=True) + "\n")


@pytest.mark.benchmark(group="obs")
def test_obs_overhead(benchmark):
    entries = benchmark.pedantic(_measure_all, rounds=1, iterations=1)
    for config, entry in entries.items():
        benchmark.extra_info[f"{config}_events_per_sec"] = \
            entry["events_per_sec"]
        benchmark.extra_info[f"{config}_median_events_per_sec"] = \
            entry["median_events_per_sec"]
    _update_obs_snapshot(entries)
    print()
    for config, entry in entries.items():
        print(f"[obs] {config}: {entry['events_per_sec']:,} events/s "
              f"best, {entry['median_events_per_sec']:,} median "
              f"(of {ROUNDS}, interleaved)")
