"""Ablation benchmark: page-policy interaction with mitigation.

Closed-page controllers activate on every access, which roughly doubles
the tracker-visible ACT rate and with it the mitigation-command rate of
rate-proportional trackers like PARA.  (Relative slowdown shrinks at the
same time, because the closed-page baseline itself is slower.)
"""

import pytest

from repro.experiments import ablations


@pytest.mark.benchmark(group="ablation_page_policy")
def test_ablation_page_policy(experiment_runner):
    result = experiment_runner("ablation_page_policy",
                               ablations.run_page_policy)
    rows = {r["page_policy"]: r for r in result.rows}
    # Closed page: every access activates.
    assert rows["closed"]["acts_per_request"] == pytest.approx(1.0,
                                                               abs=0.01)
    assert rows["open"]["acts_per_request"] < 0.8
    # More ACTs means more tracker selections and more DRFM commands.
    assert rows["closed"]["mitigation_commands"] > \
        rows["open"]["mitigation_commands"]
