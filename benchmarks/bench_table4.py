"""Benchmark: Revised DREAM-R tracker parameters (Table 4).

Regenerates the experiment through the shared harness; quick mode by
default, ``REPRO_FULL=1`` for the full 22-workload sweep.  The rendered
table lands in ``benchmarks/results/table4.txt``.
"""

import pytest

from repro.experiments import table4


@pytest.mark.benchmark(group="table4")
def test_table4(experiment_runner):
    result = experiment_runner("table4", table4.run)
    row = result.row_by(t_rh=2000)
    assert row["mint_w_dream_r"] == 97
    assert row["mint_w_with_atm"] == 99
