"""Ablation benchmark: scaled-window invariance (see repro.experiments.ablations)."""

import pytest

from repro.experiments import ablations


@pytest.mark.benchmark(group="ablation_window_scaling")
def test_ablation_window_scaling(experiment_runner):
    result = experiment_runner("ablation_window_scaling", ablations.run_window_scaling)
    by_key = {(r["refs_per_window"], r["design"]): r
              for r in result.rows}
    for design in ("para-dream-r", "mint-dream-r"):
        a = by_key[(32, design)]["avg_slowdown"]
        b = by_key[(64, design)]["avg_slowdown"]
        assert abs(a - b) < max(2.5, 0.5 * max(a, b))
