"""Ablation benchmark: transitive attack vs refresh flavours (see repro.experiments.ablations)."""

import pytest

from repro.experiments import ablations


@pytest.mark.benchmark(group="ablation_rate_limit")
def test_ablation_rate_limit(experiment_runner):
    result = experiment_runner("ablation_rate_limit", ablations.run_rate_limit)
    by_name = {r["scenario"]: r for r in result.rows}
    assert by_name["bounded p2=0, no limit"]["distance2_flips"] > 0
    assert by_name["bounded p2=0, rate-limited"]["distance2_flips"] == 0
    assert by_name["fractal p=0.5, no limit"]["distance2_flips"] == 0
