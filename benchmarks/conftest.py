"""Shared machinery for the per-table / per-figure benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper through
pytest-benchmark.  Quick mode (default) sweeps the representative
workload subset; ``REPRO_FULL=1`` switches to the full 22-workload sweep.
Every run writes its rendered result table to ``results/<name>.txt`` next
to this directory so the regenerated numbers persist beyond the pytest
output.

Execution modes (telemetry composes with parallelism — the split below
only picks where the events/sec accounting is read from):

* **Serial (default)** — each benchmark runs under a profiling-only
  telemetry instance and reports the engine's **events/sec** from the
  throughput gauge.
* **Parallel** — ``REPRO_JOBS=N`` (N > 1) activates a
  :class:`repro.exec.SweepExecutor`: sweep cells fan out over N worker
  processes and the aggregate events/sec comes from the executor's own
  accounting (worker wall-clock does not fold into the parent's
  profiler).  ``REPRO_CACHE_DIR=DIR`` additionally enables the
  content-addressed run cache in either mode.

Telemetry's *own* cost is benchmarked separately in ``bench_obs.py``,
which writes ``results/BENCH_obs.json``.

Whatever the mode, every benchmark folds its wall time, events/sec and
jobs into ``results/BENCH_sweep.json`` — the perf-trajectory snapshot
that successive PRs regress against.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.exec import runtime as exec_runtime
from repro.exec.cache import RunCache
from repro.exec.executor import SweepExecutor
from repro.experiments.common import ExperimentResult, full_mode_enabled
from repro.obs import Telemetry
from repro.obs import runtime as obs_runtime

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SWEEP_SNAPSHOT = RESULTS_DIR / "BENCH_sweep.json"


def _bench_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (0 = all cores, default 1)."""
    jobs = int(os.environ.get("REPRO_JOBS", "1") or 1)
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(jobs, 1)


def _bench_cache() -> RunCache | None:
    cache_dir = os.environ.get("REPRO_CACHE_DIR", "")
    return RunCache(cache_dir) if cache_dir else None


def _update_sweep_snapshot(name: str, wall_s: float,
                           events_per_sec: float, events: int,
                           jobs: int, mode: str) -> None:
    """Fold one benchmark into the cross-PR perf snapshot (read-modify-
    write so partial benchmark selections update incrementally)."""
    snapshot: dict = {"experiments": {}}
    try:
        snapshot = json.loads(SWEEP_SNAPSHOT.read_text())
    except (OSError, ValueError):
        pass
    experiments = snapshot.setdefault("experiments", {})
    experiments[name] = {
        "wall_s": round(wall_s, 3),
        "events_per_sec": round(events_per_sec),
        "events": events,
        "jobs": jobs,
        "mode": mode,
    }
    totals = {
        "total_wall_s": round(sum(entry["wall_s"]
                                  for entry in experiments.values()), 3),
        "total_events": sum(entry["events"]
                            for entry in experiments.values()),
        "jobs": jobs,
    }
    busy = sum(entry["events"] / entry["events_per_sec"]
               for entry in experiments.values()
               if entry["events_per_sec"])
    totals["aggregate_events_per_sec"] = \
        round(totals["total_events"] / busy) if busy else 0
    snapshot["totals"] = totals
    SWEEP_SNAPSHOT.write_text(json.dumps(snapshot, indent=2,
                                         sort_keys=True) + "\n")


@pytest.fixture
def experiment_runner(benchmark):
    """Run one experiment under pytest-benchmark and persist its output."""

    def run(name: str, runner, **kwargs) -> ExperimentResult:
        quick = not full_mode_enabled()
        jobs = _bench_jobs()
        if jobs > 1:
            telemetry = None
            executor = SweepExecutor(jobs=jobs, cache=_bench_cache())
        else:
            telemetry = Telemetry(profile=True)
            executor = (SweepExecutor(cache=_bench_cache())
                        if _bench_cache() is not None else None)

        def instrumented() -> ExperimentResult:
            with obs_runtime.activated(telemetry), \
                    exec_runtime.activated(executor):
                return runner(quick=quick, **kwargs)

        try:
            result = benchmark.pedantic(instrumented, rounds=1,
                                        iterations=1)
        finally:
            if executor is not None:
                executor.close()
        assert isinstance(result, ExperimentResult)
        assert result.rows, f"{name} produced no rows"
        RESULTS_DIR.mkdir(exist_ok=True)
        rendered = result.render()
        if telemetry is not None:
            throughput = telemetry.profiler.throughput
            events = throughput.events
            events_per_sec = throughput.events_per_sec
        else:
            events = executor.stats.engine_events
            events_per_sec = executor.stats.events_per_sec
        if events:
            rendered += (f"\nengine throughput: "
                         f"{events_per_sec:,.0f} events/s "
                         f"({events:,} events, jobs={jobs})")
        (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
        print()
        print(rendered)
        wall_s = benchmark.stats.stats.total
        mode = "full" if not quick else "quick"
        benchmark.extra_info["experiment"] = name
        benchmark.extra_info["mode"] = mode
        benchmark.extra_info["jobs"] = jobs
        benchmark.extra_info["events_per_sec"] = round(events_per_sec)
        benchmark.extra_info["events"] = events
        _update_sweep_snapshot(name, wall_s, events_per_sec, events,
                               jobs, mode)
        return result

    return run
