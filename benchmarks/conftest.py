"""Shared machinery for the per-table / per-figure benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper through
pytest-benchmark.  Quick mode (default) sweeps the representative
workload subset; ``REPRO_FULL=1`` switches to the full 22-workload sweep.
Every run writes its rendered result table to ``results/<name>.txt`` next
to this directory so the regenerated numbers persist beyond the pytest
output.

Each benchmark also runs under a profiling-only telemetry instance (no
journal, no timeline cost beyond once-per-N-tREFI reads) and reports the
engine's **events/sec** from the throughput gauge — the baseline
trajectory future performance PRs regress against.  The figure is
printed, stored in ``benchmark.extra_info`` and appended to the results
file.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.common import ExperimentResult, full_mode_enabled
from repro.obs import Telemetry
from repro.obs import runtime as obs_runtime

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def experiment_runner(benchmark):
    """Run one experiment under pytest-benchmark and persist its output."""

    def run(name: str, runner, **kwargs) -> ExperimentResult:
        quick = not full_mode_enabled()
        telemetry = Telemetry(profile=True)

        def instrumented() -> ExperimentResult:
            with obs_runtime.activated(telemetry):
                return runner(quick=quick, **kwargs)

        result = benchmark.pedantic(instrumented, rounds=1, iterations=1)
        assert isinstance(result, ExperimentResult)
        assert result.rows, f"{name} produced no rows"
        RESULTS_DIR.mkdir(exist_ok=True)
        rendered = result.render()
        throughput = telemetry.profiler.throughput
        if throughput.events:
            rendered += (f"\nengine throughput: "
                         f"{throughput.events_per_sec:,.0f} events/s "
                         f"({throughput.events:,} events)")
        (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
        print()
        print(rendered)
        benchmark.extra_info["experiment"] = name
        benchmark.extra_info["mode"] = "full" if not quick else "quick"
        benchmark.extra_info["events_per_sec"] = round(
            throughput.events_per_sec)
        benchmark.extra_info["events"] = throughput.events
        return result

    return run
