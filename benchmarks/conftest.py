"""Shared machinery for the per-table / per-figure benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper through
pytest-benchmark.  Quick mode (default) sweeps the representative
workload subset; ``REPRO_FULL=1`` switches to the full 22-workload sweep.
Every run writes its rendered result table to ``results/<name>.txt`` next
to this directory so the regenerated numbers persist beyond the pytest
output.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.common import ExperimentResult, full_mode_enabled

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def experiment_runner(benchmark):
    """Run one experiment under pytest-benchmark and persist its output."""

    def run(name: str, runner, **kwargs) -> ExperimentResult:
        quick = not full_mode_enabled()
        result = benchmark.pedantic(
            lambda: runner(quick=quick, **kwargs), rounds=1, iterations=1)
        assert isinstance(result, ExperimentResult)
        assert result.rows, f"{name} produced no rows"
        RESULTS_DIR.mkdir(exist_ok=True)
        rendered = result.render()
        (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
        print()
        print(rendered)
        benchmark.extra_info["experiment"] = name
        benchmark.extra_info["mode"] = "full" if not quick else "quick"
        return result

    return run
