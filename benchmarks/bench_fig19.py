"""Benchmark: PRAC vs DREAM-R vs DREAM-C (Figure 19).

Regenerates the experiment through the shared harness; quick mode by
default, ``REPRO_FULL=1`` for the full 22-workload sweep.  The rendered
table lands in ``benchmarks/results/fig19.txt``.
"""

import pytest

from repro.experiments import fig19


@pytest.mark.benchmark(group="fig19")
def test_fig19(experiment_runner):
    result = experiment_runner("fig19", fig19.run)
    avg = result.row_by(workload="AVERAGE")
    # PRAC's intrinsic slowdown is roughly flat across thresholds.
    prac = [avg[f"prac-moat-{t}"] for t in (500, 1000, 2000, 4000)]
    assert max(prac) - min(prac) < max(prac) * 0.5
    # DREAM-C undercuts PRAC at T_RH = 500.
    assert avg["dream-c-500"] < avg["prac-moat-500"]
    # DREAM-R undercuts PRAC for T_RH >= 1000.
    assert avg["mint-dream-r-1000"] < avg["prac-moat-1000"]
