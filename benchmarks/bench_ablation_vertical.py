"""Ablation benchmark: DREAM-C vertical-sharing design space (see repro.experiments.ablations)."""

import pytest

from repro.experiments import ablations


@pytest.mark.benchmark(group="ablation_vertical")
def test_ablation_vertical(experiment_runner):
    result = experiment_runner("ablation_vertical", ablations.run_vertical)
    rows = {r["gang_size"]: r for r in result.rows}
    # Storage halves as the gang doubles...
    assert rows[256]["kb_per_bank_full_size"] < \
        rows[32]["kb_per_bank_full_size"]
    # ...while slowdown grows monotonically with the gang.
    assert rows[32]["avg_slowdown"] <= rows[256]["avg_slowdown"] + 0.5
