"""Benchmark: Multi-program mixes (Figure 23 / Appendix D).

Regenerates the experiment through the shared harness; quick mode by
default, ``REPRO_FULL=1`` for the full 22-workload sweep.  The rendered
table lands in ``benchmarks/results/fig23.txt``.
"""

import pytest

from repro.experiments import fig23


@pytest.mark.benchmark(group="fig23")
def test_fig23(experiment_runner):
    result = experiment_runner("fig23", fig23.run)
    avg = result.row_by(mix="AVERAGE")
    assert avg["dream-c"] < avg["prac-moat"]
