"""Benchmark: DREAM-R with DRFM rate limits (Table 7).

Regenerates the experiment through the shared harness; quick mode by
default, ``REPRO_FULL=1`` for the full 22-workload sweep.  The rendered
table lands in ``benchmarks/results/table7.txt``.
"""

import pytest

from repro.experiments import table7


@pytest.mark.benchmark(group="table7")
def test_table7(experiment_runner):
    result = experiment_runner("table7", table7.run)
    penalties = {r["mint_w"]: r["penalty_with_rmaq"]
                 for r in result.rows}
    assert penalties[25] > penalties[40] >= penalties[45] == 0
