"""Benchmark: engine throughput — single cells and whole sweeps.

Measures ``run_simulation`` events/sec on two fixed cells:

* **none** — the unprotected baseline (pure core/controller/bank path);
* **mint** — mcf under coupled MINT + DRFMsb (the mitigation-heavy
  configuration ``bench_obs.py`` also uses), which is the cell the
  PR-5 1.5x acceptance criterion is judged on.

PR 7 adds the **whole-sweep** configs the batched backend is judged on
(``scalar.sweep`` / ``batched.sweep``): a ``SWEEP_CELLS``-cell
policy-free grid (mcf, seed-varied) run end-to-end through each
backend, traces prebuilt outside the timed region.  The acceptance
criterion is ``batched.sweep`` >= 5x ``scalar.sweep`` best events/s;
both feed the ``repro bench check`` ratchet as ``engine.scalar.sweep``
and ``engine.batched.sweep``.

Each cell runs one untimed warmup round and then ``ROUNDS`` timed
rounds, reporting **best-of-N** (minimum wall time — the cleanest
estimate of the code's cost under scheduler noise) alongside
**median-of-N** (the stability check).  A separate single run under
:mod:`cProfile` produces the per-stage breakdown — the share of
cumulative time spent in request service, refresh scheduling, policy
work and heap traffic — that the optimization work is steered by.

Results fold into ``results/BENCH_engine.json``.  The first ever run
freezes its numbers as the ``baseline`` section; later runs only update
``current`` and the derived ``speedup``, so the snapshot always carries
the pre-overhaul reference the acceptance criterion compares against.
Delete the file (or the ``baseline`` key) to re-baseline on new
hardware.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_engine.py``)
or under pytest-benchmark like the other ``bench_*`` modules.
"""

from __future__ import annotations

import cProfile
import json
import pathlib
import pstats
import statistics
import time

from repro.mc.mitigation import coupled_mint_factory
from repro.sim.batched import BatchItem, run_batch
from repro.sim.config import SimConfig, SystemConfig
from repro.sim.runner import run_simulation
from repro.workloads import build_traces

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
ENGINE_SNAPSHOT = RESULTS_DIR / "BENCH_engine.json"

ROUNDS = 7
REQUESTS = 4_000
WORKLOAD = "mcf"
T_RH = 500
#: Whole-sweep grid: the largest single batch the planner emits
#: (``MAX_BATCH_CELLS``), seed-varied so no two cells share traces.
SWEEP_CELLS = 512
SWEEP_REQUESTS = 500
SWEEP_ROUNDS = 3
#: Functions whose cumulative share makes up the per-stage profile.
PROFILE_STAGES = {
    "service": "controller.service",
    "refresh": "refresh.advance",
    "policy": "before_activate",
    "bank": ("bank.activate", "bank.precharge"),
    "heap": ("heappush", "heappop"),
    "fetch": "core.fetch",
}


def _cell(config: str):
    """(system, sim, traces, factory, name) for one benchmark cell."""
    system = SystemConfig.baseline(refs_per_window=32)
    sim = SimConfig(requests_per_core=REQUESTS, seed=7)
    traces = build_traces(WORKLOAD, system, sim)
    if config == "none":
        return system, sim, traces, None, "none"
    return system, sim, traces, coupled_mint_factory(T_RH), "mint"


def _measure(config: str) -> dict:
    """Warmup + best/median-of-ROUNDS events/sec for one cell."""
    system, sim, traces, factory, name = _cell(config)
    rates: list[float] = []
    events = 0
    run_simulation(system, traces, sim, factory, name)  # warmup
    for _ in range(ROUNDS):
        started = time.perf_counter()
        result = run_simulation(system, traces, sim, factory, name)
        wall_s = time.perf_counter() - started
        events = result.requests_completed
        rates.append(events / wall_s)
    return {
        "events_per_sec": round(max(rates)),
        "median_events_per_sec": round(statistics.median(rates)),
        "events": events,
        "rounds": ROUNDS,
    }


def _sweep_members():
    """(system, [(sim, traces), ...]) for the whole-sweep grid.

    Traces are built once, outside the timed region — the sweep configs
    measure engine dispatch, not trace generation."""
    system = SystemConfig.baseline(refs_per_window=32)
    members = []
    for index in range(SWEEP_CELLS):
        sim = SimConfig(requests_per_core=SWEEP_REQUESTS,
                        seed=1_000 + index)
        traces = build_traces(WORKLOAD, system, sim, calibrate=False)
        members.append((sim, traces))
    return system, members


def _measure_sweep(backend: str, system, members) -> dict:
    """Warmup + best/median-of-SWEEP_ROUNDS whole-sweep events/sec."""
    def run_all() -> int:
        if backend == "batched":
            results = run_batch(system, [
                BatchItem(traces=traces, sim=sim)
                for sim, traces in members])
        else:
            results = [run_simulation(system, traces, sim, None, "none")
                       for sim, traces in members]
        return sum(result.requests_completed for result in results)

    run_all()  # warmup: memoizes each engine's trace columns/packings
    rates: list[float] = []
    events = 0
    for _ in range(SWEEP_ROUNDS):
        started = time.perf_counter()
        events = run_all()
        wall_s = time.perf_counter() - started
        rates.append(events / wall_s)
    return {
        "events_per_sec": round(max(rates)),
        "median_events_per_sec": round(statistics.median(rates)),
        "events": events,
        "rounds": SWEEP_ROUNDS,
        "cells": SWEEP_CELLS,
    }


def _stage_profile() -> list[dict]:
    """One mitigated run under cProfile, folded into stage shares."""
    system, sim, traces, factory, name = _cell("mint")
    profiler = cProfile.Profile()
    profiler.enable()
    run_simulation(system, traces, sim, factory, name)
    profiler.disable()
    stats = pstats.Stats(profiler)
    total = stats.total_tt or 1.0
    stages = []
    for stage, needles in PROFILE_STAGES.items():
        if isinstance(needles, str):
            needles = (needles,)
        cumulative = 0.0
        self_time = 0.0
        calls = 0
        for (filename, _line, func), row in stats.stats.items():
            label = f"{pathlib.Path(filename).stem}.{func}"
            if any(needle in func or needle in label
                   for needle in needles):
                cumulative += row[3]  # inclusive of callees
                self_time += row[2]   # exclusive
                calls += row[0]
        stages.append({
            "stage": stage,
            "cum_pct": round(100.0 * min(cumulative, total) / total, 1),
            "self_pct": round(100.0 * self_time / total, 1),
            "calls": calls,
        })
    return stages


def _update_engine_snapshot(results: dict, profile: list[dict]) -> None:
    """Fold a full measurement set into ``BENCH_engine.json``.

    ``baseline`` is write-once: it keeps the pre-overhaul numbers the
    acceptance criterion (current best >= 1.5x baseline best) compares
    against.
    """
    snapshot: dict = {}
    try:
        snapshot = json.loads(ENGINE_SNAPSHOT.read_text())
    except (OSError, ValueError):
        pass
    current = {"configs": results, "profile": profile}
    snapshot["current"] = current
    snapshot.setdefault("baseline", json.loads(json.dumps(current)))
    baseline_rate = snapshot["baseline"]["configs"]["mint"][
        "events_per_sec"]
    current_rate = results["mint"]["events_per_sec"]
    snapshot["speedup"] = (round(current_rate / baseline_rate, 3)
                           if baseline_rate else 0.0)
    scalar_sweep = results.get("scalar.sweep", {}).get("events_per_sec")
    batched_sweep = results.get("batched.sweep", {}).get("events_per_sec")
    if scalar_sweep and batched_sweep:
        snapshot["sweep_speedup"] = round(batched_sweep / scalar_sweep, 3)
    snapshot["workload"] = WORKLOAD
    snapshot["requests_per_core"] = REQUESTS
    RESULTS_DIR.mkdir(exist_ok=True)
    ENGINE_SNAPSHOT.write_text(json.dumps(snapshot, indent=2,
                                          sort_keys=True) + "\n")


def run_bench(verbose: bool = True) -> dict:
    """Measure every config + the stage profile; persist the snapshot."""
    results = {config: _measure(config) for config in ("none", "mint")}
    system, members = _sweep_members()
    for backend in ("scalar", "batched"):
        results[f"{backend}.sweep"] = _measure_sweep(backend, system,
                                                     members)
    profile = _stage_profile()
    _update_engine_snapshot(results, profile)
    if verbose:
        for config, entry in results.items():
            print(f"[engine] {config}: "
                  f"{entry['events_per_sec']:,} events/s best, "
                  f"{entry['median_events_per_sec']:,} median "
                  f"(of {entry['rounds']})")
        for stage in profile:
            print(f"[engine] profile {stage['stage']}: "
                  f"{stage['cum_pct']}% cum / {stage['self_pct']}% self, "
                  f"{stage['calls']:,} calls")
        snapshot = json.loads(ENGINE_SNAPSHOT.read_text())
        print(f"[engine] speedup vs baseline: {snapshot['speedup']}x")
        if "sweep_speedup" in snapshot:
            print(f"[engine] whole-sweep batched vs scalar: "
                  f"{snapshot['sweep_speedup']}x")
    return results


def test_engine_throughput(benchmark):
    """pytest-benchmark entry point (one macro-round around the set)."""
    results = benchmark.pedantic(run_bench, args=(False,),
                                 rounds=1, iterations=1)
    for config, entry in results.items():
        benchmark.extra_info[f"{config}_events_per_sec"] = \
            entry["events_per_sec"]


if __name__ == "__main__":
    run_bench()
