"""Benchmark: Workload characterisation (Table 3).

Regenerates the experiment through the shared harness; quick mode by
default, ``REPRO_FULL=1`` for the full 22-workload sweep.  The rendered
table lands in ``benchmarks/results/table3.txt``.
"""

import pytest

from repro.experiments import table3


@pytest.mark.benchmark(group="table3")
def test_table3(experiment_runner):
    result = experiment_runner("table3", table3.run)
    for r in result.rows:
        # Every workload touches some rows but leaves most untouched.
        assert 0.0 <= r["rows_act0_pct"] <= 100.0
        assert r["bw_util_pct"] > 1.0
