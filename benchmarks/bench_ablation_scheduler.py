"""Ablation benchmark: FCFS vs FR-FCFS queued scheduling.

Under load, first-ready scheduling converts queued locality into row
hits: higher hit rate, lower latency — and fewer ACTs for trackers.
"""

import pytest

from repro.experiments import ablations


@pytest.mark.benchmark(group="ablation_scheduler")
def test_ablation_scheduler(experiment_runner):
    result = experiment_runner("ablation_scheduler",
                               ablations.run_scheduler)
    rows = {r["policy"]: r for r in result.rows}
    assert rows["fr-fcfs"]["row_hit_rate"] >= rows["fcfs"]["row_hit_rate"]
    assert rows["fr-fcfs"]["activations"] <= rows["fcfs"]["activations"]
    assert rows["fr-fcfs"]["avg_latency_ns"] <= \
        rows["fcfs"]["avg_latency_ns"] * 1.02
    assert rows["fr-fcfs"]["reorders"] > 0
