"""Benchmark: Realised RLP with DRFMsb vs DREAM-R (Table 5).

Regenerates the experiment through the shared harness; quick mode by
default, ``REPRO_FULL=1`` for the full 22-workload sweep.  The rendered
table lands in ``benchmarks/results/table5.txt``.
"""

import pytest

from repro.experiments import table5


@pytest.mark.benchmark(group="table5")
def test_table5(experiment_runner):
    result = experiment_runner("table5", table5.run)
    rlp = {r["design"]: r["average_rlp"] for r in result.rows}
    assert rlp["para-drfmsb"] == pytest.approx(1.0, abs=0.2)
    assert rlp["para-dream-r"] > 2.0
    assert rlp["mint-dream-r"] > 6.0
