"""Benchmark: Coupled PARA/MINT with NRR vs DRFMsb vs DRFMab (Figure 5).

Regenerates the experiment through the shared harness; quick mode by
default, ``REPRO_FULL=1`` for the full 22-workload sweep.  The rendered
table lands in ``benchmarks/results/fig5.txt``.
"""

import pytest

from repro.experiments import fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5(experiment_runner):
    result = experiment_runner("fig5", fig5.run)
    avg = result.row_by(workload="AVERAGE")
    assert avg["para-nrr"] < avg["para-drfmsb"] < avg["para-drfmab"]
    assert avg["mint-nrr"] < avg["mint-drfmsb"] < avg["mint-drfmab"]
