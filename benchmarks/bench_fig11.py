"""Benchmark: PARA vs MINT inter-selection distances (Figure 11).

Regenerates the experiment through the shared harness; quick mode by
default, ``REPRO_FULL=1`` for the full 22-workload sweep.  The rendered
table lands in ``benchmarks/results/fig11.txt``.
"""

import pytest

from repro.experiments import fig11


@pytest.mark.benchmark(group="fig11")
def test_fig11(experiment_runner):
    result = experiment_runner("fig11", fig11.run)
    stats = {r["tracker"]: r for r in result.rows}
    assert stats["para"]["std_distance"] > \
        2 * stats["mint"]["std_distance"]
    assert stats["para"]["short_gap_fraction"] > \
        2 * stats["mint"]["short_gap_fraction"]
