"""Benchmark: DREAM-C grouping and threshold sensitivity (Figure 15).

Regenerates the experiment through the shared harness; quick mode by
default, ``REPRO_FULL=1`` for the full 22-workload sweep.  The rendered
table lands in ``benchmarks/results/fig15.txt``.
"""

import pytest

from repro.experiments import fig15


@pytest.mark.benchmark(group="fig15")
def test_fig15(experiment_runner):
    result = experiment_runner("fig15", fig15.run)
    avg = result.row_by(workload="AVERAGE")
    assert avg["dream-c-rand-500"] < avg["dream-c-assoc-500"]
    assert avg["dream-c-rand-1000"] <= avg["dream-c-rand-250"]
