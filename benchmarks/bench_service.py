"""Benchmark: service job-scheduling throughput under concurrency.

Measures the sweep service end to end — HTTP submission through
:class:`~repro.service.server.ServiceThread`, scheduling through
:class:`~repro.service.jobs.JobScheduler`, completion via
:meth:`~repro.service.client.SweepClient.wait_many` — on a batch of
``JOBS`` *distinct* single-cell jobs, twice per round:

* **serial** — ``concurrency=1``, the pre-concurrency scheduler shape:
  jobs run strictly one after another, so the batch's wall time is the
  sum of the job latencies;
* **concurrent** — ``concurrency=WORKERS``: the batch's wall time
  tracks the *slowest* job instead of the sum.

This is a **scheduling** benchmark, so the cell cost is synthetic:
:class:`SleepCellExecutor` replaces the compute of every cell with a
fixed ``CELL_SECONDS`` sleep (in a pool worker when the executor pools
the cell, inline otherwise) returning a pre-computed real
:class:`~repro.sim.results.RunResult`.  Sleeps overlap even on the
1-core CI box — unlike CPU-bound cells, which would serialise and
measure the machine, not the scheduler — and the service times are
exactly equal across jobs and arms, so the speedup figure isolates
what the concurrent scheduler adds.  Everything around the sleep is
the real stack: real scan/memo/fingerprint path, real job threads,
real HTTP round-trips.

Jobs are one-cell sweeps on purpose: with cells-per-job >= pool width
a saturated pool hides job-level concurrency entirely (serial already
keeps every worker busy), while the many-jobs/few-cells regime is
exactly where PR 8's in-order scheduler collapsed to single-job
latency.

Each arm reports best-of-``ROUNDS`` and median-of-``ROUNDS``
jobs/sec (rounds interleave serial/concurrent to cancel machine-speed
drift, after one untimed warmup round).  Results fold into
``results/BENCH_service.json``; the acceptance criterion is the
``speedup`` figure (concurrent / serial, best-based) >= 3x at
``WORKERS = 4``, and ``repro bench record`` / ``check`` ratchet the
``service.*`` metrics alongside the engine and obs families.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_service.py``)
or under pytest-benchmark like the other ``bench_*`` modules.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time

from repro.exec.executor import SweepExecutor, _execute_cell
from repro.experiments import registry
from repro.experiments.common import ExperimentResult, RunOptions
from repro.exec import runtime as exec_runtime
from repro.exec.executor import Cell
from repro.service.client import SweepClient
from repro.service.jobs import JobScheduler
from repro.service.server import ServiceThread
from repro.sim.config import SimConfig, SystemConfig
from repro.workloads.profiles import profile

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SERVICE_SNAPSHOT = RESULTS_DIR / "BENCH_service.json"

#: Timed rounds per arm (plus one untimed warmup round).
ROUNDS = 5
#: Distinct jobs per round — the "batch of disjoint sweeps".
JOBS = 4
#: Job worker threads in the concurrent arm (and executor pool width).
WORKERS = 4
#: Synthetic service time of one cell.
CELL_SECONDS = 0.5
#: Request budget of the one real cell backing the canned result.
REQUESTS = 200

#: Registry name the bench experiment is installed under while the
#: benchmark runs.
EXPERIMENT = "bench-service-sleep"

WORKLOAD = "mcf"


def _make_cell(seed: int) -> Cell:
    """One policy-free (fingerprintable) cell, distinct per ``seed``."""
    system = SystemConfig.baseline()
    return Cell(workload=profile(WORKLOAD), trace_system=system,
                run_system=system,
                sim=SimConfig(requests_per_core=REQUESTS, seed=seed),
                policy=None, policy_name="none")


def _sleep_cell(seconds: float, result):
    """Worker-side synthetic cell: the service time is a sleep (which
    overlaps across pool processes and across job threads even on one
    core), the payload a pre-computed real result."""
    time.sleep(seconds)
    return result, seconds, None


class SleepCellExecutor(SweepExecutor):
    """A :class:`SweepExecutor` whose computed cells cost a fixed sleep.

    Only the two attempt entry points are replaced — scan, memo,
    fingerprints, singleflight, the fair-share window and the pool
    lifecycle all run the real code, so the measured difference between
    the arms is scheduling, not simulation speed.
    """

    def __init__(self, *args, cell_seconds: float = CELL_SECONDS,
                 canned=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.cell_seconds = cell_seconds
        self.canned = canned

    def _submit(self, cell, fp, attempt, capture=None):
        if not self._pool_usable():
            return None
        try:
            pool = self._pool_handle()
            return pool.submit(_sleep_cell, self.cell_seconds,
                               self.canned), pool
        except Exception:
            self._note_pool_failure(self._pool)
            return None

    def _attempt_inline(self, cell, fp, attempt, capture=None):
        return _sleep_cell(self.cell_seconds, self.canned)


def _run_sleep_experiment(quick: bool = True,
                          seed: int = 0) -> ExperimentResult:
    """The bench experiment: one seed-distinct cell through the ambient
    executor (the service's), merged like any real sweep."""
    executor = exec_runtime.active()
    if executor is None:
        executor = SweepExecutor()
    results = executor.run_cells([_make_cell(seed)])
    return ExperimentResult(
        experiment=EXPERIMENT, title="service scheduling bench cell",
        rows=[{"seed": seed,
               "requests": results[0].requests_completed}])


def _measure_round(concurrency: int, canned, seed_base: int) -> float:
    """Wall seconds for one JOBS-job batch at the given concurrency."""
    executor = SleepCellExecutor(jobs=WORKERS, canned=canned)
    scheduler = JobScheduler(executor, spans=False,
                             concurrency=concurrency)
    with ServiceThread(scheduler) as service:
        client = SweepClient(service.url)
        started = time.perf_counter()
        job_ids = [client.submit(EXPERIMENT,
                                 RunOptions(seed=seed_base + index))
                   for index in range(JOBS)]
        records = client.wait_many(job_ids, timeout_s=120.0)
        wall = time.perf_counter() - started
    for job_id, record in records.items():
        if record["state"] != "done":
            raise RuntimeError(f"bench job {job_id} failed: "
                               f"{record.get('error')}")
    return wall


def _measure_all() -> dict[str, dict]:
    """Warmup + interleaved best/median-of-ROUNDS for both arms."""
    canned = _execute_cell(_make_cell(0))[0]
    registry.EXPERIMENTS[EXPERIMENT] = _run_sleep_experiment
    walls: dict[str, list[float]] = {"serial": [], "concurrent": []}
    try:
        seed_base = 1_000
        for timed in (False, True, True, True, True, True)[:ROUNDS + 1]:
            for arm, concurrency in (("serial", 1),
                                     ("concurrent", WORKERS)):
                wall = _measure_round(concurrency, canned, seed_base)
                seed_base += JOBS
                if timed:
                    walls[arm].append(wall)
    finally:
        registry.EXPERIMENTS.pop(EXPERIMENT, None)
    entries: dict[str, dict] = {}
    for arm, samples in walls.items():
        rates = [JOBS / wall for wall in samples]
        entries[arm] = {
            "jobs_per_sec": round(max(rates), 3),
            "median_jobs_per_sec": round(statistics.median(rates), 3),
            "best_wall_s": round(min(samples), 3),
            "median_wall_s": round(statistics.median(samples), 3),
            "rounds": len(samples),
            "jobs": JOBS,
            "cell_seconds": CELL_SECONDS,
            "concurrency": 1 if arm == "serial" else WORKERS,
        }
    return entries


def _update_service_snapshot(entries: dict[str, dict]) -> None:
    """Read-modify-write ``BENCH_service.json`` (mirrors
    BENCH_obs.json)."""
    snapshot: dict = {"configs": {}}
    try:
        snapshot = json.loads(SERVICE_SNAPSHOT.read_text())
    except (OSError, ValueError):
        pass
    configs = snapshot.setdefault("configs", {})
    configs.update(entries)
    serial = configs.get("serial", {})
    concurrent = configs.get("concurrent", {})
    if serial.get("jobs_per_sec") and concurrent.get("jobs_per_sec"):
        snapshot["speedup"] = round(
            concurrent["jobs_per_sec"] / serial["jobs_per_sec"], 3)
    if serial.get("median_jobs_per_sec") and \
            concurrent.get("median_jobs_per_sec"):
        snapshot["median_speedup"] = round(
            concurrent["median_jobs_per_sec"]
            / serial["median_jobs_per_sec"], 3)
    snapshot["workers"] = WORKERS
    snapshot["jobs_per_round"] = JOBS
    snapshot["cell_seconds"] = CELL_SECONDS
    RESULTS_DIR.mkdir(exist_ok=True)
    SERVICE_SNAPSHOT.write_text(json.dumps(snapshot, indent=2,
                                           sort_keys=True) + "\n")


def run_bench(verbose: bool = True) -> dict:
    """Measure both arms and persist the snapshot."""
    entries = _measure_all()
    _update_service_snapshot(entries)
    if verbose:
        for arm, entry in entries.items():
            print(f"[service] {arm} (concurrency="
                  f"{entry['concurrency']}): "
                  f"{entry['jobs_per_sec']} jobs/s best "
                  f"({entry['best_wall_s']}s/batch), "
                  f"{entry['median_jobs_per_sec']} median "
                  f"(of {entry['rounds']}, interleaved)")
        snapshot = json.loads(SERVICE_SNAPSHOT.read_text())
        print(f"[service] concurrent vs serial scheduler: "
              f"{snapshot.get('speedup')}x best, "
              f"{snapshot.get('median_speedup')}x median "
              f"(target >= 3x at {WORKERS} workers)")
    return entries


def test_service_scheduling_throughput(benchmark):
    """pytest-benchmark entry point (one macro-round around the set)."""
    entries = benchmark.pedantic(run_bench, args=(False,),
                                 rounds=1, iterations=1)
    for arm, entry in entries.items():
        benchmark.extra_info[f"{arm}_jobs_per_sec"] = \
            entry["jobs_per_sec"]


if __name__ == "__main__":
    run_bench()
