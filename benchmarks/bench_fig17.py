"""Benchmark: ABACuS vs DREAM-C at T_RH=125 (Figure 17).

Regenerates the experiment through the shared harness; quick mode by
default, ``REPRO_FULL=1`` for the full 22-workload sweep.  The rendered
table lands in ``benchmarks/results/fig17.txt``.
"""

import pytest

from repro.experiments import fig17


@pytest.mark.benchmark(group="fig17")
def test_fig17(experiment_runner):
    result = experiment_runner("fig17", fig17.run)
    rows = {r["design"]: r for r in result.rows}
    ratio = rows["abacus"]["kb_per_bank_full_size"] / \
        rows["dream-c"]["kb_per_bank_full_size"]
    assert ratio == pytest.approx(6.33, rel=0.05)
    assert rows["dream-c-2x"]["avg_slowdown"] <= \
        rows["dream-c"]["avg_slowdown"] + 0.5
