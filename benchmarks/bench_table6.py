"""Benchmark: DREAM-C configurations and storage (Table 6).

Regenerates the experiment through the shared harness; quick mode by
default, ``REPRO_FULL=1`` for the full 22-workload sweep.  The rendered
table lands in ``benchmarks/results/table6.txt``.
"""

import pytest

from repro.experiments import table6


@pytest.mark.benchmark(group="table6")
def test_table6(experiment_runner):
    result = experiment_runner("table6", table6.run)
    row = result.row_by(t_rh=500)
    assert row["gang_size"] == 128
    assert row["graphene_ratio"] == pytest.approx(8.0, rel=0.05)
