"""Benchmark: DREAM-C at 16 cores with 2x DCT (Figure 22 / Appendix C).

Regenerates the experiment through the shared harness; quick mode by
default, ``REPRO_FULL=1`` for the full 22-workload sweep.  The rendered
table lands in ``benchmarks/results/fig22.txt``.
"""

import pytest

from repro.experiments import fig22


@pytest.mark.benchmark(group="fig22")
def test_fig22(experiment_runner):
    result = experiment_runner("fig22", fig22.run)
    avg = result.row_by(workload="AVERAGE")
    # Doubling the DCT reduces the 16-core slowdown at every threshold.
    for t in (250, 500, 1000):
        assert avg[f"dream-c-2x-{t}"] <= avg[f"dream-c-{t}"] + 0.5
