"""Motivation benchmark: in-DRAM TRR bypass (bit-flip outcomes)."""

import pytest

from repro.experiments import motivation


@pytest.mark.benchmark(group="motivation_trr")
def test_motivation_trr(experiment_runner):
    result = experiment_runner("motivation_trr",
                               motivation.run_trr_bypass)
    by_key = {(r["pattern"], r["defense"]): r for r in result.rows}
    # TRR stops the naive hammer...
    assert by_key[("double-sided", "trr")]["bit_flips"] == 0
    # ...but the decoy pattern flips through it...
    assert by_key[("decoy-shadow", "trr")]["bit_flips"] > 0
    # ...while MC-side DREAM-R stays flip-free on every pattern.
    for pattern in ("double-sided", "decoy-shadow", "blacksmith"):
        assert by_key[(pattern, "mint-dream-r")]["bit_flips"] == 0
