"""Motivation benchmark: adversarial extrinsic slowdown of PRAC."""

import pytest

from repro.experiments import motivation


@pytest.mark.benchmark(group="motivation_prac")
def test_motivation_prac_extrinsic(experiment_runner):
    result = experiment_runner("motivation_prac_extrinsic",
                               motivation.run_prac_extrinsic)
    rows = {r["defense"]: r for r in result.rows}
    # The attack forces mitigations on both defended systems.
    assert rows["prac-moat"]["mitigations"] > 0
    assert rows["mint-dream-r"]["mitigations"] > 0
    # Self-inflicted slowdown stays in contention-attack range.
    for name in ("prac-moat", "mint-dream-r"):
        assert rows[name]["slowdown_factor"] < 3.0
